"""Figure 9 — performance on the large benchmarks, as per-procedure
averages: P (mined predicates), C (cover clauses), T (seconds).

Shapes from the paper:

* "As expected, A1 and A2 collect fewer predicates than Conc";
* the number of cover clauses is comparatively stable across
  configurations;
* Conc runs noticeably slower than the abstract domains.
"""

import sys
import time

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from _util import (CACHE_DIR, SCALE, TIMEOUT, emit, emit_json, sum_pcache,
                   suite_run_stats)

from repro.bench import LARGE_SUITE_RECIPES, fig9_table, make_suite, run_suite
from repro.bench.runner import compile_suite
from repro.core import A1, A2, CONC


def test_fig9_per_procedure_averages(benchmark):
    perf = {"suites": {}}

    def run():
        data = {}
        t0 = time.monotonic()
        for name in LARGE_SUITE_RECIPES:
            suite = make_suite(name, scale=SCALE)
            program = compile_suite(suite)
            cells = {}
            for config in (CONC, A1, A2):
                r = run_suite(suite, config, timeout=TIMEOUT,
                              program=program, cache_dir=CACHE_DIR)
                cells[config.name] = (r.avg_preds, r.avg_clauses,
                                      r.avg_seconds)
                perf["suites"][f"{name}/{config.name}"] = suite_run_stats(r)
            data[name] = cells
        perf["wall_seconds"] = round(time.monotonic() - t0, 3)
        return data

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("fig9_performance", fig9_table(data))
    stats = perf["suites"].values()
    perf["total_queries"] = sum(s["queries"] for s in stats)
    perf["total_cache_hits"] = sum(s["cache_hits"] for s in stats)
    perf["total_queries_saved"] = sum(s["queries_saved"] for s in stats)
    solver = {}
    for s in stats:
        for k, v in s["solver"].items():
            solver[k] = solver.get(k, 0) + v
    perf["solver"] = solver
    perf["pcache"] = sum_pcache(stats)
    emit_json("fig9_performance", perf)

    n = len(data)
    avg_p = {c: sum(cells[c][0] for cells in data.values()) / n
             for c in ("Conc", "A1", "A2")}
    avg_t = {c: sum(cells[c][2] for cells in data.values()) / n
             for c in ("Conc", "A1", "A2")}
    # abstractions shrink the vocabulary
    assert avg_p["A1"] <= avg_p["Conc"]
    assert avg_p["A2"] <= avg_p["A1"]
    # and the concrete domain is the slowest (allow a little noise)
    assert avg_t["Conc"] >= avg_t["A2"] * 0.8
