"""Figure 7 — precision/completeness classification on the labeled suites.

The CWE-style suites carry ground-truth labels (our generators know which
dereferences are bugs, just as the NIST SAMATE suite labels its test
cases).  For each configuration we count correctly classified assertions
(C), false positives (FP) and false negatives (FN).

Shapes that must hold (§5.1.2):

* "Adding abstractions (such as A1 and A2) to Conc allows us to report
  more real bugs than the concrete domain while barely increasing the
  number of false positives";
* Conc reports (essentially) no false positives on these suites;
* the conservative verifier has no false negatives but many false
  positives;
* "Even the coarsest abstraction fails to report lots of real bugs"
  (the FN count stays well above zero — by design, not weakness).
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from _util import SCALE, TIMEOUT, emit

from repro.bench import (classify, fig7_table, make_suite,
                         run_conservative, run_suite)
from repro.bench.runner import compile_suite
from repro.core import A1, A2, CONC

SUITES = ["CWE476", "CWE690"]


def test_fig7_alarm_classification(benchmark):
    def run():
        data = {}
        for name in SUITES:
            suite = make_suite(name, scale=SCALE)
            program = compile_suite(suite)
            cells = {}
            for config in (CONC, A1, A2):
                r = run_suite(suite, config, timeout=TIMEOUT, program=program)
                cells[config.name] = classify(suite, r)
            cons = run_conservative(suite, timeout=TIMEOUT, program=program)
            cells["Cons"] = classify(suite, cons)
            data[name] = cells
        return data

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("fig7_classification", fig7_table(data))

    def total(config, attr):
        return sum(getattr(cells[config], attr) for cells in data.values())

    # Conc: high precision — no false positives on the labeled suites
    assert total("Conc", "false_positives") == 0
    # the abstractions classify at least as many assertions correctly
    assert total("A1", "correct") >= total("Conc", "correct")
    assert total("A2", "correct") >= total("Conc", "correct")
    # and barely increase false positives (the paper sees 0 -> 2)
    assert total("A2", "false_positives") <= total("Conc", "false_positives") + 3
    # the conservative verifier: complete but imprecise
    assert total("Cons", "false_negatives") == 0
    assert total("Cons", "false_positives") > 0
    # even the coarsest abstraction misses real bugs (expected FNs)
    assert total("A2", "false_negatives") > 0
