"""The behavior matrix: every benchmark pattern × every configuration.

This is the repository's strongest regression net for the analysis
semantics: each cell encodes which configuration reveals which warning on
which code pattern, mirroring the discriminations the paper's evaluation
is built on (Conc = semantic inconsistencies; A1 adds
conditional-blindness; A2 adds callee-effect blindness; Cons = demonic).
"""

import pytest

from repro.bench.runner import compile_suite
from repro.bench.suites import build_suite
from repro.core import A1, A2, CONC, find_abstract_sibs

# pattern -> (Cons warning count, Conc warnings, A1 warnings, A2 warnings)
MATRIX = {
    "guarded_deref":          (0, [], [], []),
    "loop_copy":              (0, [], [], []),
    "env_safe_deref":         (1, [], [], []),
    "param_deref_buggy":      (1, [], [], []),
    "state_machine":          (3, [], [], []),
    "check_then_use":         (1, ["deref$1"], ["deref$1"], ["deref$1"]),
    "late_check":             (1, ["deref$2"], ["deref$2"], ["deref$2"]),
    "defensive_macro":        (1, ["deref$1"], ["deref$1"], ["deref$1"]),
    "sl_assert":              (1, ["user$1"], ["user$1"], ["user$1"]),
    "double_free":            (6, ["free$5"], ["free$5"], ["free$5"]),
    "correlated_guard":       (1, [], ["deref$1"], ["deref$1"]),
    "unchecked_alloc_branch": (1, [], ["deref$1"], ["deref$1"]),
    "unchecked_alloc_simple": (1, [], [], ["deref$1"]),
    "field_after_call":       (1, [], [], ["deref$3"]),
    "lock_protocol":          (1, [], [], []),
    "double_unlock":          (2, ["lock$1", "unlock$2"],
                               ["lock$1", "unlock$2"],
                               ["lock$1", "unlock$2"]),
}


@pytest.fixture(scope="module")
def analyses():
    out = {}
    for pattern in MATRIX:
        suite = build_suite("t", "t", {pattern: 1}, seed=11)
        prog = compile_suite(suite)
        fn = suite.functions[0].name
        cell = {}
        for config in (CONC, A1, A2):
            cell[config.name] = find_abstract_sibs(prog, fn, config=config)
        out[pattern] = cell
    return out


@pytest.mark.parametrize("pattern", sorted(MATRIX))
def test_conservative_count(analyses, pattern):
    n_cons, *_ = MATRIX[pattern]
    res = analyses[pattern]["Conc"]
    assert len(res.conservative_warnings) == n_cons, \
        res.conservative_warnings


@pytest.mark.parametrize("pattern", sorted(MATRIX))
@pytest.mark.parametrize("config_idx,config_name",
                         [(1, "Conc"), (2, "A1"), (3, "A2")])
def test_config_warnings(analyses, pattern, config_idx, config_name):
    expected = MATRIX[pattern][config_idx]
    res = analyses[pattern][config_name]
    assert res.warnings == expected, (pattern, config_name, res.warnings)


@pytest.mark.parametrize("pattern", sorted(MATRIX))
def test_warning_monotonicity_across_knobs(analyses, pattern):
    """Proposition 2's practical face: a smaller vocabulary (A2 ⊆ A1 ⊆
    Conc in expressible specs) can only surface *more* inconsistencies
    on these single-knob patterns."""
    conc = set(analyses[pattern]["Conc"].warnings)
    a1 = set(analyses[pattern]["A1"].warnings)
    a2 = set(analyses[pattern]["A2"].warnings)
    assert conc <= a1 <= a2
