"""End-to-end reproduction of every worked example in the paper.

Each test corresponds to a specific figure or section; comments cite the
claim being checked.
"""

import pytest

from repro import (A0, A1, A2, CONC, SibStatus, analyze_procedure,
                   compile_c, find_abstract_sibs, parse_program, typecheck)

# ----------------------------------------------------------------------
# Figure 1 — the double-free with a missing return (§1.1.1)
# ----------------------------------------------------------------------

FIG1_C = """
void Foo(int *c, char *buf, int cmd) {
  if (nondet()) {
    free(c);
    free(buf);
    return;
  }
  if (cmd == 0) {
    if (nondet()) {
      free(c);
      free(buf);
      /* ERROR: missing return */
    }
  }
  free(c);
  free(buf);
  return;
}
"""


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return find_abstract_sibs(compile_c(FIG1_C), "Foo", config=CONC)

    def test_conservative_reports_all_six(self, result):
        # "the absence of precise environment assumptions yields a flood
        # of stupid false alarms" — Boogie would warn on all 6 frees
        assert len(result.conservative_warnings) == 6

    def test_is_concrete_sib(self, result):
        # Dead(WP(Foo)) != {} : A3/A4's branch dies under the WP
        assert result.status == SibStatus.SIB

    def test_q_matches_paper(self, result):
        # Q = {!Freed[c], !Freed[buf], cmd == READ, c == buf}
        assert len(result.preds) == 4

    def test_single_high_confidence_warning(self, result):
        # "which fails only A5, the assertion failure corresponding to
        # the true bug" (free$5 = the fifth free precondition)
        assert result.warnings == ["free$5"]
        assert result.min_fail == 1

    def test_spec_is_exactly_papers(self, result):
        # "our method infers a single almost-correct specification:
        # (!Freed[c] && !Freed[buf] && c != buf)"
        assert result.specs == \
            ["(!(buf == c) && 0 == Freed[buf] && 0 == Freed[c])"]


# ----------------------------------------------------------------------
# Figure 2 — unchecked calloc / abstract SIB (§1.1.2)
# ----------------------------------------------------------------------

FIG2_C = """
struct twoints { int a; int b; };
int static_returns_t(void);

void Bar(void) {
  struct twoints *data = NULL;
  data = (struct twoints *)calloc(100, sizeof(struct twoints));
  if (static_returns_t()) {
    data[0].a = 1;
  } else {
    if (data != NULL) {
      data[0].a = 1;
    } else {
    }
  }
}
"""


class TestFigure2:
    @pytest.fixture(scope="class")
    def program(self):
        return compile_c(FIG2_C)

    def test_conc_suppresses_via_correlation(self, program):
        # "the weakest precondition conjures up a correlation between the
        # two procedures ... there is no SIB by the concrete definition"
        res = find_abstract_sibs(program, "Bar", config=CONC)
        assert res.status == SibStatus.MAYBUG
        assert res.warnings == []
        # the correlation spec mentions both lam$ constants
        assert any("calloc" in s and "static_returns_t" in s
                   for s in res.specs)

    @pytest.mark.parametrize("config", [A1, A2, A0])
    def test_abstractions_reveal_bug(self, program, config):
        # "the almost-correct specification (over Q) for this example is
        # true, which reveals the bug in location A1"
        res = find_abstract_sibs(program, "Bar", config=config)
        assert res.status == SibStatus.SIB
        assert res.warnings == ["deref$1"]
        assert res.specs == ["true"]

    def test_clause_pruning_reveals_on_conc(self, program):
        # §4.3: "both schemes ... will reveal the warning by pruning the
        # clause lam.static_returns_t ==> lam.calloc != 0"
        res = find_abstract_sibs(program, "Bar", config=CONC, prune_k=1)
        assert res.warnings == ["deref$1"]


# ----------------------------------------------------------------------
# §4.4.2 — the conditional-correlation example
# ----------------------------------------------------------------------

SEC442_C = """
void Foo(int c1, int c2, int *x) {
  if (c1) {
    if (x) { *x = 1; }
  }
  if (c2) { *x = 2; }
}
"""


class TestSection442:
    def test_conc_conjures_guard_correlation(self):
        prog = compile_c(SEC442_C)
        res = find_abstract_sibs(prog, "Foo", config=CONC)
        # "The weakest precondition avoids non-null errors by conjuring
        # c2 ==> x != 0" — no concrete SIB, no warnings
        assert res.status == SibStatus.MAYBUG
        assert res.warnings == []

    def test_a1_reveals(self):
        prog = compile_c(SEC442_C)
        res = find_abstract_sibs(prog, "Foo", config=A1)
        assert res.status == SibStatus.SIB
        assert res.warnings  # the unguarded deref under c2


# ----------------------------------------------------------------------
# §4.4.3 — havoc returns can be too imprecise
# ----------------------------------------------------------------------


class TestSection443:
    def test_havoc_loses_valid_pointer(self):
        # void Bar() { x = getValidPointer(); *x = 1; }
        # wp(Bar, true) = false under havoc-returns: Q empty, every cube
        # fails, the almost-correct spec is true and the deref is warned
        src = """
            int getValidPointer(void);
            void Bar(void) {
              int *x;
              x = getValidPointer();
              *x = 1;
            }
        """
        prog = compile_c(src)
        conc = find_abstract_sibs(prog, "Bar", config=CONC)
        a2 = find_abstract_sibs(prog, "Bar", config=A2)
        # Conc can express lam != 0 and stays silent
        assert conc.warnings == []
        # A2's vocabulary is empty: the warning appears (with low
        # confidence, as an abstract SIB over Q = {})
        assert a2.warnings == ["deref$1"]


# ----------------------------------------------------------------------
# §5.1.3 — the false-positive patterns observed on Windows code
# ----------------------------------------------------------------------


class TestSection513Patterns:
    def test_defensive_macro_conc_fp(self):
        src = """
            struct node { int val; struct node *next; };
            void f(struct node *x) {
              int y;
              y = x->val;
              if (x != NULL && x->val == 3) { x->val = y + 1; }
              else { y = 0; }
            }
        """
        res = find_abstract_sibs(compile_c(src), "f", config=CONC)
        # "Conc flags this as a SIB since L1 is unreachable for the
        # specification x != NULL"
        assert res.status == SibStatus.SIB
        assert "deref$1" in res.warnings

    def test_sl_assert_conc_fp(self):
        src = """
            void sl(int n, int *out) {
              if (!(n >= 0)) { assert(0); }
              if (out != NULL) { *out = n; }
            }
        """
        res = find_abstract_sibs(compile_c(src), "sl", config=CONC)
        # "Our tool insists that the then branch of such code be
        # reachable, although the user expects it reachable only when the
        # assertion fails"
        assert res.status == SibStatus.SIB
        assert "user$1" in res.warnings

    def test_correlated_guard_a1_fp_conc_ok(self):
        src = """
            void h(int len, char *mbuf) {
              int i;
              if (len >= 1) {
                for (i = 0; i < len; i++) { mbuf[i] = 1; }
              }
              if (mbuf != NULL) { mbuf[0] = 0; }
            }
        """
        prog = compile_c(src)
        # "the tool avoids the error during Conc analysis by inferring
        # the correct precondition len >= 1 ==> mbuf != 0"
        assert find_abstract_sibs(prog, "h", config=CONC).warnings == []
        # "However, A1 results in a stronger specification mbuf != 0,
        # which creates dead code ... and reveals a SIB"
        a1 = find_abstract_sibs(prog, "h", config=A1)
        assert a1.status == SibStatus.SIB
        assert a1.warnings

    def test_field_after_call_a2_fp_conc_a1_ok(self):
        src = """
            struct node { int val; struct node *next; };
            void bar(void);
            void g(struct node *x) {
              if (x == NULL) { return; }
              if (x->next == NULL) { return; }
              bar();
              x->next->val = 1;
            }
        """
        prog = compile_c(src)
        # "both Conc and A1 can add a specification lam.bar.f[x] != 0
        # since the modified values have associated symbolic constants"
        assert find_abstract_sibs(prog, "g", config=CONC).warnings == []
        assert find_abstract_sibs(prog, "g", config=A1).warnings == []
        # "A vast majority of the A2 warnings are due to ... A2 can't
        # capture that x->f != 0 after the call"
        a2 = find_abstract_sibs(prog, "g", config=A2)
        assert a2.warnings == ["deref$3"]


# ----------------------------------------------------------------------
# §6 — comparisons with related work
# ----------------------------------------------------------------------


class TestRelatedWorkComparisons:
    def test_necessary_precondition_stronger_case(self):
        # if (x) { assert x; } assert x : necessary precondition is x,
        # the almost-correct specification is true (strictly weaker)
        prog = typecheck(parse_program("""
            procedure P1(x: int) {
              if (x != 0) { A1: assert x != 0; }
              A2: assert x != 0;
            }
        """))
        res = find_abstract_sibs(prog, "P1", config=CONC)
        assert res.specs == ["true"]
        assert res.warnings == ["A2"]

    def test_acspec_stronger_case(self):
        # if (*) assert x : necessary precondition is true, the
        # almost-correct specification is x (strictly stronger)
        prog = typecheck(parse_program("""
            procedure P2(x: int) {
              if (*) { A1: assert x != 0; }
            }
        """))
        res = find_abstract_sibs(prog, "P2", config=CONC)
        assert res.specs == ["!(0 == x)"]
        assert res.warnings == []

    def test_wedge_miss_case_is_concrete_sib_here(self):
        # if (*) then assert e else assert !e : Tomb&Flanagan's wedges
        # miss it; our formulation reports a concrete SIB
        prog = typecheck(parse_program("""
            procedure P3(e: int) {
              if (*) { A1: assert e != 0; } else { A2: assert e == 0; }
            }
        """))
        res = find_abstract_sibs(prog, "P3", config=CONC)
        assert res.status == SibStatus.SIB
        assert sorted(res.warnings) == ["A1", "A2"]
        assert res.min_fail == 1

    def test_simple_but_buggy_is_fn_everywhere(self):
        # §5.1.2: "void Foo(x) { *x = 1; }" has no inconsistency; every
        # configuration misses it (the paper's main FN class)
        prog = compile_c("void Simple(int *x) { *x = 1; }")
        for config in (CONC, A0, A1, A2):
            res = find_abstract_sibs(prog, "Simple", config=config)
            assert res.status == SibStatus.MAYBUG
            assert res.warnings == []
