"""Lowering tests: the HAVOC-style memory model, automatic deref
assertions, free() inlining, short-circuit expansion, loop unrolling,
nondet recognition, scoping, and the conservative modifies sets."""

import pytest

from repro.frontend.lower import LowerError, compile_c, field_map
from repro.lang.ast import (AssertStmt, AssignStmt, AssumeStmt, CallStmt,
                            HavocStmt, IfStmt, MapAssignStmt, RelExpr,
                            SelectExpr, Type, VarExpr, WhileStmt,
                            walk_stmts)


def body_of(src: str, name: str | None = None):
    prog = compile_c(src)
    if name is None:
        name = next(n for n, p in prog.procedures.items()
                    if p.body is not None)
    return prog, prog.proc(name).body


def asserts(body):
    return [s for s in walk_stmts(body) if isinstance(s, AssertStmt)]


class TestMemoryModel:
    def test_deref_null_check_inserted(self):
        prog, body = body_of("void f(int *p) { *p = 1; }")
        a = asserts(body)
        assert len(a) == 1
        assert a[0].label == "deref$1"
        assert isinstance(a[0].formula, RelExpr) and a[0].formula.op == "!="

    def test_deref_writes_mem_map(self):
        prog, body = body_of("void f(int *p) { *p = 1; }")
        writes = [s for s in walk_stmts(body) if isinstance(s, MapAssignStmt)]
        assert writes[0].map == "Mem"

    def test_field_uses_field_map(self):
        prog, body = body_of("""
            struct S { int a; };
            void f(struct S *p) { p->a = 7; }
        """)
        writes = [s for s in walk_stmts(body) if isinstance(s, MapAssignStmt)]
        assert writes[0].map == field_map("a")
        assert field_map("a") in prog.globals

    def test_index_addresses_base_plus_offset(self):
        prog, body = body_of("void f(int *a, int i) { a[i] = 1; }")
        w = [s for s in walk_stmts(body) if isinstance(s, MapAssignStmt)][0]
        from repro.lang.ast import BinExpr
        assert isinstance(w.index, BinExpr) and w.index.op == "+"

    def test_struct_array_element_field(self):
        prog, body = body_of("""
            struct S { int a; };
            void f(struct S *d) { d[1].a = 2; }
        """)
        w = [s for s in walk_stmts(body) if isinstance(s, MapAssignStmt)][0]
        assert w.map == field_map("a")
        from repro.lang.ast import BinExpr
        assert isinstance(w.index, BinExpr)  # d + 1

    def test_free_inlined_as_spec(self):
        prog, body = body_of("void f(int *p) { free(p); }")
        a = asserts(body)
        assert a[0].label == "free$1"
        w = [s for s in walk_stmts(body) if isinstance(s, MapAssignStmt)][0]
        assert w.map == "Freed"

    def test_null_becomes_zero(self):
        prog, body = body_of("void f(void) { int *p = NULL; }")
        assign = [s for s in walk_stmts(body) if isinstance(s, AssignStmt)][0]
        from repro.lang.ast import IntLit
        assert assign.expr == IntLit(0)


class TestCallsAndNondet:
    def test_external_call_keeps_call_stmt(self):
        prog, body = body_of("void f(void) { int *p = malloc(8); }")
        calls = [s for s in walk_stmts(body) if isinstance(s, CallStmt)]
        assert calls[0].callee == "malloc"
        assert prog.proc("malloc").body is None

    def test_nondet_is_native(self):
        prog, body = body_of("void f(int x) { if (nondet()) { x = 1; } }")
        assert not any(isinstance(s, CallStmt) for s in walk_stmts(body))
        top = next(s for s in walk_stmts(body) if isinstance(s, IfStmt))
        assert top.cond is None

    def test_nondet_in_expression_is_havoc(self):
        prog, body = body_of("void f(int x) { x = nondet(); }")
        assert any(isinstance(s, HavocStmt) for s in walk_stmts(body))
        assert not any(isinstance(s, CallStmt) for s in walk_stmts(body))

    def test_defined_function_called_with_args(self):
        prog, body = body_of("""
            int helper(int a) { return a + 1; }
            void f(int x) { x = helper(x); }
        """, name="f")
        calls = [s for s in walk_stmts(body) if isinstance(s, CallStmt)]
        assert calls[0].callee == "helper"
        assert len(calls[0].args) == 1

    def test_conservative_modifies_all_maps(self):
        prog = compile_c("""
            struct S { int a; };
            void g(void);
            void f(struct S *p) { g(); p->a = 1; }
        """)
        proc = prog.proc("f")
        assert "Mem" in proc.modifies
        assert "Freed" in proc.modifies
        assert field_map("a") in proc.modifies

    def test_precise_modifies_option(self):
        prog = compile_c("void f(int *p) { *p = 1; }",
                         conservative_modifies=False)
        assert prog.proc("f").modifies == ("Mem",)

    def test_division_is_uninterpreted(self):
        prog, body = body_of("void f(int x, int y) { x = x / y; }")
        from repro.lang.ast import FunAppExpr
        assign = [s for s in walk_stmts(body) if isinstance(s, AssignStmt)][0]
        assert isinstance(assign.expr, FunAppExpr)
        assert assign.expr.name == "div$"


class TestShortCircuit:
    def test_and_becomes_nested_ifs(self):
        prog, body = body_of("""
            struct S { int a; };
            void f(struct S *x) {
              if (x != NULL && x->a == 1) { x->a = 2; } else { x->a = 3; }
            }
        """)
        ifs = [s for s in walk_stmts(body) if isinstance(s, IfStmt)]
        assert len(ifs) == 2  # && expanded

    def test_deref_check_nested_under_guard(self):
        # the deref of x->a in the second conjunct must sit inside the
        # x != NULL branch, not before the conditional
        prog, body = body_of("""
            struct S { int a; };
            void f(struct S *x) {
              if (x != NULL && x->a == 1) { x->a = 2; }
            }
        """)
        outer = next(s for s in walk_stmts(body) if isinstance(s, IfStmt))
        outer_asserts_before = []
        # no assert at top level before the outer if
        top = body
        from repro.lang.ast import SeqStmt
        if isinstance(top, SeqStmt):
            for s in top.stmts:
                if s is outer:
                    break
                if isinstance(s, AssertStmt):
                    outer_asserts_before.append(s)
        assert not outer_asserts_before
        inner_asserts = asserts(outer.then)
        assert inner_asserts  # the x->a check lives inside the guard

    def test_or_duplicates_then(self):
        prog, body = body_of(
            "void f(int x, int y) { if (x == 0 || y == 0) { x = 1; } }")
        ifs = [s for s in walk_stmts(body) if isinstance(s, IfStmt)]
        assert len(ifs) == 2

    def test_not_swaps_branches(self):
        prog, body = body_of(
            "void f(int x) { if (!(x == 0)) { x = 1; } else { x = 2; } }")
        top = next(s for s in walk_stmts(body) if isinstance(s, IfStmt))
        then_assign = [s for s in walk_stmts(top.then)
                       if isinstance(s, AssignStmt)][0]
        from repro.lang.ast import IntLit
        assert then_assign.expr == IntLit(2)  # swapped


class TestLoops:
    def test_while_unrolled_no_whilestmt(self):
        prog, body = body_of("void f(int n) { while (n > 0) { n = n - 1; } }")
        assert not any(isinstance(s, WhileStmt) for s in walk_stmts(body))
        ifs = [s for s in walk_stmts(body) if isinstance(s, IfStmt)]
        assert len(ifs) == 3  # 2 unrollings + blocked tail

    def test_for_loop_unrolled_with_step(self):
        prog, body = body_of("""
            void f(int n) {
              int i;
              for (i = 0; i < n; i++) { n = n + 1; }
            }
        """)
        assert not any(isinstance(s, WhileStmt) for s in walk_stmts(body))

    def test_unroll_depth_configurable(self):
        prog = compile_c("void f(int n) { while (n > 0) { n = n - 1; } }",
                         unroll_depth=3)
        body = prog.proc("f").body
        ifs = [s for s in walk_stmts(body) if isinstance(s, IfStmt)]
        assert len(ifs) == 4


class TestScoping:
    def test_shadowing_renames(self):
        prog, body = body_of("""
            void f(int x) {
              int y = 1;
              if (x == 0) {
                int y = 2;
                x = y;
              }
              x = y;
            }
        """)
        assigns = [s for s in walk_stmts(body) if isinstance(s, AssignStmt)]
        names = {s.var for s in assigns}
        # two distinct y's exist
        y_like = {n for n in prog.proc("f").var_types if n.startswith("y")}
        assert len(y_like) == 2

    def test_return_value_variable(self):
        prog = compile_c("int f(int x) { return x + 1; }")
        proc = prog.proc("f")
        assert proc.returns == ("ret$",)

    def test_undeclared_identifier_raises(self):
        with pytest.raises(LowerError):
            compile_c("void f(void) { x = 1; }")

    def test_globals_visible(self):
        prog = compile_c("int g; void f(void) { g = 1; }")
        assert "g" in prog.globals


class TestWholeProgram:
    def test_typechecks(self):
        # compile_c runs the IL type checker; a large mixed program
        src = """
            struct node { int val; struct node *next; };
            int ext(void);
            int helper(struct node *n) {
              if (n == NULL) { return 0; }
              return n->val;
            }
            void f(struct node *n, int k) {
              int t = helper(n);
              while (t < k) { t = t + ext(); }
              if (n != NULL && n->val == t) { free(n); }
            }
        """
        prog = compile_c(src)
        assert set(prog.procedures) >= {"helper", "f", "ext"}

    def test_assert_labels_unique_per_function(self):
        prog, body = body_of("void f(int *p, int *q) { *p = 1; *q = 2; }")
        labels = [a.label for a in asserts(body)]
        assert labels == ["deref$1", "deref$2"]
