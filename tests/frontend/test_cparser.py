"""Mini-C lexer and parser tests."""

import pytest

from repro.frontend.cast import (CAssert, CAssign, CBinary, CBlock, CCall,
                                 CCast, CDecl, CField, CFor, CIf, CIndex,
                                 CInt, CNull, CReturn, CSizeof, CUnary,
                                 CVar, CWhile)
from repro.frontend.clexer import CLexError, tokenize_c
from repro.frontend.cparser import CParseError, parse_c


class TestLexer:
    def test_preprocessor_lines_skipped(self):
        toks = tokenize_c("#include <stdio.h>\nint x;")
        assert [t.text for t in toks[:-1]] == ["int", "x", ";"]

    def test_comments(self):
        toks = tokenize_c("a // x\n /* y */ b")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_arrow_vs_minus(self):
        toks = tokenize_c("p->f - q")
        assert [t.text for t in toks[:-1]] == ["p", "->", "f", "-", "q"]

    def test_string_literal_becomes_nonzero(self):
        toks = tokenize_c('f("hello")')
        assert toks[2].kind == "int"

    def test_bad_char(self):
        with pytest.raises(CLexError):
            tokenize_c("int $x;")


def first_fn(src: str):
    unit = parse_c(src)
    return next(f for f in unit.functions.values() if f.body is not None)


class TestTopLevel:
    def test_struct_def(self):
        unit = parse_c("struct node { int val; struct node *next; };")
        sd = unit.structs["node"]
        assert sd.fields[0] == ("val", sd.fields[0][1])
        assert sd.fields[1][1].ptr == 1

    def test_globals(self):
        unit = parse_c("int g; int *p;")
        assert unit.globals["g"].ptr == 0
        assert unit.globals["p"].ptr == 1

    def test_prototype_and_definition(self):
        unit = parse_c("int ext(void); void f(void) { ext(); }")
        assert unit.functions["ext"].body is None
        assert unit.functions["f"].body is not None

    def test_params(self):
        fn = first_fn("void f(int a, char *b) { a = 1; }")
        assert fn.params[0][0] == "a"
        assert fn.params[1][1].ptr == 1

    def test_struct_name_as_type(self):
        unit = parse_c("""
            struct S { int a; };
            void f(struct S *p) { p->a = 1; }
        """)
        fn = unit.functions["f"]
        assert fn.params[0][1].base == "struct S"


class TestStatements:
    def test_decl_with_init(self):
        fn = first_fn("void f(void) { int x = 3; }")
        d = fn.body.stmts[0]
        assert isinstance(d, CDecl) and d.init == CInt(3)

    def test_pointer_decl_null_init(self):
        fn = first_fn("void f(void) { int *p = NULL; }")
        d = fn.body.stmts[0]
        assert isinstance(d.init, CNull)

    def test_assign_through_deref(self):
        fn = first_fn("void f(int *p) { *p = 5; }")
        a = fn.body.stmts[0]
        assert isinstance(a, CAssign)
        assert isinstance(a.target, CUnary) and a.target.op == "*"

    def test_field_and_index_assign(self):
        unit = parse_c("""
            struct S { int a; };
            void f(struct S *p, int *q) { p->a = 1; q[2] = 3; }
        """)
        body = unit.functions["f"].body
        assert isinstance(body.stmts[0].target, CField)
        assert isinstance(body.stmts[1].target, CIndex)

    def test_if_else_chain(self):
        fn = first_fn("""
            void f(int x) {
              if (x == 0) { x = 1; } else if (x == 1) { x = 2; }
              else { x = 3; }
            }
        """)
        top = fn.body.stmts[0]
        assert isinstance(top, CIf)
        assert isinstance(top.els, CIf)

    def test_if_without_braces(self):
        fn = first_fn("void f(int x) { if (x) x = 1; else x = 2; }")
        top = fn.body.stmts[0]
        assert isinstance(top, CIf)
        assert isinstance(top.then, CBlock)

    def test_while_and_for(self):
        fn = first_fn("""
            void f(int n) {
              int i;
              while (n > 0) { n = n - 1; }
              for (i = 0; i < n; i++) { n = n + i; }
            }
        """)
        assert isinstance(fn.body.stmts[1], CWhile)
        loop = fn.body.stmts[2]
        assert isinstance(loop, CFor)
        assert isinstance(loop.step, CAssign)

    def test_assert_stmt(self):
        fn = first_fn("void f(int x) { assert(x != 0); }")
        assert isinstance(fn.body.stmts[0], CAssert)

    def test_return_forms(self):
        fn = first_fn("int f(int x) { if (x) { return 1; } return x; }")
        assert isinstance(fn.body.stmts[1], CReturn)

    def test_compound_assignment_sugar(self):
        fn = first_fn("void f(int x) { x += 2; x--; }")
        a, b = fn.body.stmts
        assert isinstance(a.value, CBinary) and a.value.op == "+"
        assert isinstance(b.value, CBinary) and b.value.op == "-"


class TestExpressions:
    def test_precedence(self):
        fn = first_fn("void f(int x, int y) { x = x + y * 2; }")
        e = fn.body.stmts[0].value
        assert e.op == "+" and e.rhs.op == "*"

    def test_short_circuit_parse(self):
        fn = first_fn("void f(int x, int y) { if (x && y || x) { x = 1; } }")
        cond = fn.body.stmts[0].cond
        assert cond.op == "||"
        assert cond.lhs.op == "&&"

    def test_cast_and_sizeof(self):
        unit = parse_c("""
            struct S { int a; };
            void f(void) {
              struct S *p = (struct S *)malloc(10 * sizeof(struct S));
            }
        """)
        d = unit.functions["f"].body.stmts[0]
        assert isinstance(d.init, CCast)
        call = d.init.arg
        assert isinstance(call, CCall) and call.name == "malloc"

    def test_nested_field_chain(self):
        unit = parse_c("""
            struct node { int val; struct node *next; };
            void f(struct node *x) { x->next->val = 1; }
        """)
        tgt = unit.functions["f"].body.stmts[0].target
        assert isinstance(tgt, CField) and isinstance(tgt.base, CField)

    def test_index_then_field(self):
        unit = parse_c("""
            struct S { int a; };
            void f(struct S *d) { d[0].a = 1; }
        """)
        tgt = unit.functions["f"].body.stmts[0].target
        assert isinstance(tgt, CField) and isinstance(tgt.base, CIndex)

    def test_address_of_rejected(self):
        with pytest.raises(CParseError):
            parse_c("void f(int x) { g(&x); }")

    def test_unary_not_and_star(self):
        fn = first_fn("void f(int *p, int x) { if (!x) { x = *p; } }")
        cond = fn.body.stmts[0].cond
        assert isinstance(cond, CUnary) and cond.op == "!"
