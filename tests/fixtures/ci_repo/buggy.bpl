// The Figure 1 double-free shape: a genuine inconsistency warning.
procedure Buggy(c: int, buf: int, cmd: int) modifies Freed;
{
  if (*) {
    A1: assert Freed[c] == 0;  Freed[c] := 1;
    A2: assert Freed[buf] == 0; Freed[buf] := 1;
    return;
  }
  if (cmd == 0) {
    if (*) {
      A3: assert Freed[c] == 0;  Freed[c] := 1;
      A4: assert Freed[buf] == 0; Freed[buf] := 1;
    }
  }
  A5: assert Freed[c] == 0;  Freed[c] := 1;
  A6: assert Freed[buf] == 0; Freed[buf] := 1;
}
