// Shared heap model: Freed[p] == 1 once p has been released.
var Freed: [int]int;

procedure Release(p: int) modifies Freed;
  requires Freed[p] == 0;
  ensures Freed[p] == 1;
{
  R1: assert Freed[p] == 0;
  Freed[p] := 1;
}
