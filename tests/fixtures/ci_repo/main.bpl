// Cross-file caller: Release lives in alloc.bpl.
procedure Main(a: int, b: int) modifies Freed;
{
  if (*) {
    call Release(a);
    M1: assert Freed[a] == 1;
    return;
  }
  call Release(b);
  M2: assert Freed[b] == 1;
}
