// Leaf procedure with no calls in or out of the other files.
procedure Clamp(x: int, lo: int, hi: int) returns (r: int)
  ensures r >= lo;
{
  r := x;
  if (r < lo) { r := lo; }
  if (r > hi) { r := hi; }
  U1: assert r >= lo;
}
