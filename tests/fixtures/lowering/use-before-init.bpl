var Freed: [int]int;
var Init: [int]int;
var Locked: [int]int;
var Mem: [int]int;
function div$(int, int): int;
function mod$(int, int): int;

procedure f(p: int, n: int, d: int)
  modifies Mem, Freed, Locked, Init;
{
  var x: int;
  var b: int;
  var tmp$1: int;
  Init[1] := 0;
  Init[2] := 0;
  call tmp$1 := malloc();
  b := tmp$1;
  Init[2] := 1;
  if (n > 0) {
    x := 1;
    Init[1] := 1;
  }
  uninit$1: assert Init[1] != 0;
  Mem[p] := x;
  uninit$2: assert Init[2] != 0;
  Mem[(b + n)] := div$(n, d);
  uninit$3: assert Init[2] != 0;
  Freed[b] := 1;
}

procedure malloc() returns (r: int)
  modifies Mem, Freed, Locked, Init;
  ;
