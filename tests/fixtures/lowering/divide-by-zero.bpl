var Freed: [int]int;
var Locked: [int]int;
var Mem: [int]int;
function div$(int, int): int;
function mod$(int, int): int;

procedure f(p: int, n: int, d: int)
  modifies Mem, Freed, Locked;
{
  var x: int;
  var b: int;
  var tmp$1: int;
  call tmp$1 := malloc();
  b := tmp$1;
  if (n > 0) {
    x := 1;
  }
  Mem[p] := x;
  div$1: assert d != 0;
  Mem[(b + n)] := div$(n, d);
  Freed[b] := 1;
}

procedure malloc() returns (r: int)
  modifies Mem, Freed, Locked;
  ;
