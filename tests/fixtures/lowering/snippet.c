void f(int *p, int n, int d) {
  int x;
  int *b;
  b = (int *)malloc(4);
  if (n > 0) {
    x = 1;
  }
  *p = x;
  b[n] = n / d;
  free(b);
}
