// hand-written regression — replayed by tests/corpus/test_corpus_replay.py
// oracle: interp-vs-wp
// rng-seed: 0
// found: hand-written kind=regression
// detail: divide-by-zero scenario shape — the div$ obligation guards an
// uninterpreted div$(n, d) application; the assert is on d itself, so
// interp and wp must agree even though the quotient stays symbolic.
procedure main(n: int, d: int)
{
  var q: int;
  assume d > 0;
  div$1: assert d != 0;
  q := div$(n, d);
  assert (d > 0 ==> d != 0);
}

function div$(int, int): int;
