// hand-written regression — replayed by tests/corpus/test_corpus_replay.py
// oracle: theory_justifications
// rng-seed: 0
// found: hand-written kind=regression
// detail: lemmas from LIA equation pivoting (2*x + y == 0 substituted
// into the bounds) and a disequality split must carry justifications
// the standalone checker replays; the PR 3 pivot-integrality bug made
// exactly this shape derive a lemma that is not T-valid, which the
// checked-lemma pass rejects while trusted-lemma mode accepts silently.
procedure main(x: int, y: int)
{
  assume (2 * x + y == 0);
  if (x <= -1) {
    assert (y >= 2);
  } else {
    assume (y != 0);
    assert (x >= 1 || y <= -1 || y >= 1);
  }
}
