// hand-written regression — replayed by tests/corpus/test_corpus_replay.py
// oracle: interp-vs-wp
// rng-seed: 0
// found: hand-written kind=regression
// detail: map index collision — when a == 0 the two stores hit the same
// cell and m[a] must read back 2, not 1; wp's store/select reasoning and
// the interpreter's concrete map must agree on the aliasing case.
procedure main(a: int, m: [int]int)
{
  m[a] := 1;
  m[0] := 2;
  assert (a == 0 ==> m[a] == 2);
  assert (a == 1 ==> m[a] == 1);
}
