// hand-written regression — replayed by tests/corpus/test_corpus_replay.py
// oracle: interp-vs-wp
// rng-seed: 0
// found: hand-written kind=regression
// detail: null-deref scenario shape — the guard assumes p away from 0
// only on one branch; wp must thread the branch condition into the
// deref$ obligation exactly like the interpreter's concrete path does.
procedure main(p: int, Mem: [int]int)
{
  if (p > 0) {
    deref$1: assert p != 0;
    Mem[p] := 1;
  } else {
    Mem[0] := 2;
  }
  assert (p > 0 ==> Mem[p] == 1);
}
