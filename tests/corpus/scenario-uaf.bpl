// hand-written regression — replayed by tests/corpus/test_corpus_replay.py
// oracle: interp-vs-wp
// rng-seed: 0
// found: hand-written kind=regression
// detail: use-after-free scenario shape — Freed is ordinary map state,
// so the uaf$ obligation after the strong update Freed[p] := 1 must
// read back 1 under both wp's store/select chain and the interpreter.
procedure main(p: int, Freed: [int]int)
{
  assume Freed[p] == 0;
  uaf$1: assert Freed[p] == 0;
  Freed[p] := 1;
  assert Freed[p] == 1;
  Freed[p] := 0;
  uaf$2: assert Freed[p] == 0;
}
