// hand-written regression — replayed by tests/corpus/test_corpus_replay.py
// oracle: interp-vs-wp
// rng-seed: 0
// found: hand-written kind=regression
// detail: buffer-overflow scenario shape — the bound$ obligation is a
// conjunction over a map read (0 <= i && i < AllocSize[b]); wp's
// conjunct splitting and the interpreter's short-circuit evaluation
// must reach the same verdict when i sits exactly on the boundary.
procedure main(i: int, b: int, AllocSize: [int]int)
{
  AllocSize[b] := 2;
  assume i >= 0;
  assume i <= 1;
  bound$1: assert (0 <= i && i < AllocSize[b]);
  AllocSize[b] := i;
  assert AllocSize[b] < 2;
}
