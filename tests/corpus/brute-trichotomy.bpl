// hand-written regression — replayed by tests/corpus/test_corpus_replay.py
// oracle: brute-vs-solver
// rng-seed: 0
// found: hand-written kind=regression
// detail: trichotomy — every branch's assertion holds, so Fail(true) is
// empty and all locations are live; the solver side needs the LIA theory
// to settle a < b / b < a / a == b consistently with the interpreter.
procedure main(a: int, b: int)
{
  assume (-2 <= a && a <= 2);
  assume (-2 <= b && b <= 2);
  if (a < b) {
    assert (a <= b);
  } else {
    if (b < a) {
      assert (b != a);
    } else {
      assert (a == b);
    }
  }
}
