// fuzz reproducer — replayed forever by tests/corpus/test_corpus_replay.py
// oracle: cache
// rng-seed: 0
// found: campaign-seed=0 iteration=15 kind=certificate
// detail: sat certificate: model extraction failed — the LIA presolver's
// Gaussian elimination picked an arbitrary pivot; eliminating x from
// 2x + y = 0 substitutes x = -y/2 and forgets x's integrality ("y is
// even"), so DPLL(T) answered sat for an integer-infeasible query and
// model extraction (correctly) could not build a witness.  Fixed by
// divisor-aware pivot selection in repro.smt.theories.lia._presolve_raw.
procedure main(a: int, m: [int]int)
{
  m[0] := -a;
  a := (-a * 2);
  while (a <= 0) {
    havoc a;
  }
  if (((a <= a ==> a <= 3) || 0 < a)) {
    a := (-2 - a);
    if (m[a] < 3) {
      skip;
    } else {
      assert (2 == a ==> (a != 3 && 2 < 3));
    }
  }
}
