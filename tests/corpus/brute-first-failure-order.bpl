// hand-written regression — replayed by tests/corpus/test_corpus_replay.py
// oracle: brute-vs-solver
// rng-seed: 0
// found: hand-written kind=regression
// detail: first-failure semantics — at a == 2 both assertions are false,
// but only the *first* one is the first failure of some execution; the
// solver's Fail(true) must match the interpreter's stop-at-first-failure
// behaviour, not the set of all false assertions.
procedure main(a: int)
{
  assume (-2 <= a && a <= 2);
  assert (a < 2);
  assert (a != 2);
}
