// fuzz reproducer — replayed forever by tests/corpus/test_corpus_replay.py
// oracle: cache
// rng-seed: 1542439414
// found: campaign-seed=0 iteration=263 kind=certificate
// detail: sat certificate: model extraction failed — LIA only saw the
// opaque key f(-b), so b was never pinned; class valuation then gave b
// and the term -b *independent* fresh values (109 and 110), the
// function table was built as f(110) = 3, and evaluating the model
// computed f(-109) instead — missing the table and flipping the atom.
// Fixed in repro.smt.model by pinning every key feeding an application
// argument (like select indices) and extending Ackermann propagation
// from selects to uninterpreted applications.
function f(int): int;

procedure main(b: int)
{
  b := -b;
  if (f(b) < 3) {
    skip;
  }
}
