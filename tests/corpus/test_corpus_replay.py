"""Replay every committed fuzz reproducer, forever.

Each ``.bpl`` file in this directory carries a machine-readable header
(``// oracle:``, ``// rng-seed:``) naming the differential oracle that
found it (see ``repro.fuzz.oracles`` for the oracle matrix).  A case
passes when its oracle reports no disagreement *and* no certificate is
rejected — i.e. the regression it pinned down stays fixed.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fuzz.campaign import parse_case_header
from repro.fuzz.oracles import ORACLES, run_oracle
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck

CORPUS_DIR = Path(__file__).resolve().parent
CASES = sorted(CORPUS_DIR.glob("*.bpl"))


def test_corpus_is_not_empty():
    assert CASES, "the committed regression corpus must never be empty"


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case(path: Path):
    text = path.read_text()
    oracle, rng_seed = parse_case_header(text)
    assert oracle in ORACLES, f"{path.name}: unknown oracle {oracle!r}"
    program = typecheck(parse_program(text))
    # CertificateError propagating out of the oracle fails the test too.
    detail = run_oracle(oracle, program, seed=rng_seed)
    assert detail is None, f"{path.name}: {detail}"
