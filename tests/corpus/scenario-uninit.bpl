// hand-written regression — replayed by tests/corpus/test_corpus_replay.py
// oracle: interp-vs-wp
// rng-seed: 0
// found: hand-written kind=regression
// detail: use-before-init scenario shape — Init is flipped to 1 on only
// one branch, so the uninit$ obligation holds iff the branch was taken;
// wp's join of the two branch summaries must match the concrete run.
procedure main(s: int, k: int, Init: [int]int)
{
  Init[s] := 0;
  if (k > 0) {
    Init[s] := 1;
  }
  uninit$1: assert (k > 0 ==> Init[s] != 0);
  assert (k <= 0 ==> Init[s] == 0);
}
