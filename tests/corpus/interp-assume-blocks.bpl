// hand-written regression — replayed by tests/corpus/test_corpus_replay.py
// oracle: interp-vs-wp
// rng-seed: 0
// found: hand-written kind=regression
// detail: assume-blocked executions — for inputs with a != 0 the assume
// blocks the (unique) execution before the assertion is reached; wp must
// treat those states as vacuously satisfying wp(body, true), matching the
// interpreter's BLOCKED status (which is not an assertion failure).
procedure main(a: int)
{
  assume (a == 0);
  assert (a == 0);
  assert (a < 1);
}
