"""The intra-query parallel mode (`repro.smt.parallel`): spec parsing,
the structural term codec, portfolio/cube races end-to-end, crash and
cancellation behavior, and the determinism contract (parallel on/off
gives the same verdicts and accepted certificates).

Worker processes are real (``spawn`` start method), so every test here
keeps the problem small and the fleet at 2-3 workers.
"""

import os
import signal
import threading
import time

import pytest

from repro.smt.api import Solver
from repro.smt.parallel import (ParallelConfig, _decode_nodes, _TermEncoder,
                                available_slots, parse_parallel_spec)
from repro.smt.terms import TermFactory

# every query escalates: no admission floor, near-zero probe budget
FAST_RACE = dict(probe_conflicts=5, min_clauses=0)


def _pigeonhole(n: int, parallel=None, validate=False):
    """n integers confined to n-1 values; pairwise-distinctness guards.

    All n*(n-1)/2 guards on -> unsat; dropping a few -> sat.  Everything
    goes through the api.Solver mutators so the op log is complete.
    """
    f = TermFactory()
    s = Solver(f, validate=validate, parallel=parallel)
    xs = [f.int_var(f"x{i}") for i in range(n)]
    for x in xs:
        s.add(f.le(f.intconst(1), x), f.le(x, f.intconst(n - 1)))
    inds = []
    for i in range(n):
        for j in range(i):
            ind = s.new_indicator()
            s.add_guarded(ind, f.not_(f.eq(xs[i], xs[j])))
            inds.append(ind)
    return f, s, inds


def _assert_closed(s: Solver) -> None:
    ctx = s._par_ctx
    s.close()
    assert ctx.workers == []


# ----------------------------------------------------------------------
# pure pieces: spec parsing, slot accounting, term codec
# ----------------------------------------------------------------------

def test_parse_parallel_spec():
    assert parse_parallel_spec(None) is None
    assert parse_parallel_spec(False) is None
    assert parse_parallel_spec("off") is None
    assert parse_parallel_spec("none") is None
    cfg = parse_parallel_spec("auto")
    assert (cfg.mode, cfg.workers) == ("auto", None)
    assert parse_parallel_spec(True).mode == "auto"
    cfg = parse_parallel_spec("cubes:4")
    assert (cfg.mode, cfg.workers) == ("cubes", 4)
    assert parse_parallel_spec("PORTFOLIO:2").mode == "portfolio"
    with pytest.raises(ValueError):
        parse_parallel_spec("bogus")
    with pytest.raises(ValueError):
        parse_parallel_spec("cubes:1")
    with pytest.raises(ValueError):
        parse_parallel_spec("auto:x")


def test_available_slots_env(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_SLOTS", "3")
    assert available_slots() == 3
    monkeypatch.setenv("REPRO_PARALLEL_SLOTS", "not-a-number")
    assert available_slots() == (os.cpu_count() or 1)
    monkeypatch.delenv("REPRO_PARALLEL_SLOTS")
    assert available_slots() == (os.cpu_count() or 1)


def test_single_slot_auto_disables_parallelism(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_SLOTS", "1")
    _, s, inds = _pigeonhole(4, parallel=ParallelConfig(**FAST_RACE))
    assert s._par_ctx._nworkers == 0
    assert s.check(inds) == "unsat"  # falls through to sequential
    assert s.stats()["parallel_queries"] == 0
    assert s._par_ctx.workers == []
    _assert_closed(s)


def test_term_codec_roundtrip():
    from repro.smt.terms import Sort
    f = TermFactory()
    x, y = f.int_var("x"), f.bool_var("b")
    m = f.map_var("m")
    terms = [
        f.true, f.false, f.intconst(-7),
        f.add(x, f.intconst(3)),
        f.ite(y, x, f.neg(x)),
        f.select(f.store(m, x, f.intconst(1)), x),
        f.implies(y, f.le(f.sub(x, f.intconst(2)), f.mul(x, x))),
        f.apply("g", [x], Sort.INT),
    ]
    enc = _TermEncoder()
    idxs = [enc.encode(t) for t in terms]
    # re-encoding is free: the node table must not grow
    size = len(enc.nodes)
    assert [enc.encode(t) for t in terms] == idxs
    assert len(enc.nodes) == size

    g = TermFactory()
    table: list = []
    _decode_nodes(g, enc.nodes, table)
    # decode into a *second* fresh factory via a fresh encoder: the node
    # tables must agree structurally, proving the codec is faithful
    enc2 = _TermEncoder()
    assert [enc2.encode(table[i]) for i in idxs] == idxs
    assert enc2.nodes == enc.nodes


def test_share_channel_defaults_are_inert():
    from repro.smt.sat.solver import SatSolver, ShareChannel
    ch = ShareChannel()
    assert ch.export([1, 2], 1) is False
    assert ch.pulse() == []
    solver = SatSolver()
    st = solver.stats()
    assert st["clauses_imported"] == 0
    assert st["clauses_exported"] == 0


# ----------------------------------------------------------------------
# end-to-end races
# ----------------------------------------------------------------------

@pytest.mark.parametrize("mode", ["auto", "portfolio", "cubes"])
def test_race_verdicts_match_sequential(mode):
    _, s0, inds0 = _pigeonhole(6)
    want_unsat = s0.check(inds0)
    want_sat = s0.check(inds0[:-4])
    assert (want_unsat, want_sat) == ("unsat", "sat")

    cfg = ParallelConfig(mode=mode, workers=3, **FAST_RACE)
    _, s, inds = _pigeonhole(6, parallel=cfg, validate=True)
    assert s.check(inds) == "unsat"
    assert s.unsat_core  # adopted core, parent ids
    assert set(map(abs, s.unsat_core)) <= set(inds)
    assert s.check(inds[:-4]) == "sat"
    st = s.stats()
    assert st["parallel_queries"] >= 1
    # certificates were demanded (validate=True) and accepted
    assert s.certificates["unsat_checked"] >= 1
    assert s.certificates["sat_checked"] >= 1
    assert s._par_ctx.worker_errors == []
    _assert_closed(s)


def test_repeated_races_are_deterministic_verdicts():
    cfg = ParallelConfig(workers=2, **FAST_RACE)
    _, s, inds = _pigeonhole(5, parallel=cfg, validate=True)
    for _ in range(3):
        assert s.check(inds) == "unsat"
        assert s.check(inds[:-3]) == "sat"
    _assert_closed(s)


def test_probe_decides_easy_queries_without_forking():
    cfg = ParallelConfig(workers=2, probe_conflicts=10_000, min_clauses=0)
    _, s, inds = _pigeonhole(4, parallel=cfg)
    assert s.check(inds) == "unsat"
    st = s.stats()
    assert st["parallel_probe_decided"] == 1
    assert st["parallel_queries"] == 0
    assert s._par_ctx.workers == []  # never spawned
    _assert_closed(s)


def test_admission_floor_skips_small_problems():
    cfg = ParallelConfig(workers=2, probe_conflicts=5, min_clauses=10 ** 6)
    _, s, inds = _pigeonhole(4, parallel=cfg)
    assert s.check(inds) == "unsat"
    assert s.stats()["parallel_queries"] == 0
    assert s._par_ctx.workers == []
    _assert_closed(s)


def test_learnt_clauses_are_shared_between_workers():
    """A purely propositional problem over indicator variables: every
    literal is API-crossing, so learnt clauses are exportable and the
    parent hub must rebroadcast them."""
    def build(parallel):
        f = TermFactory()
        s = Solver(f, parallel=parallel)
        p, h = 7, 6
        v = [[s.new_indicator() for _ in range(h)] for _ in range(p)]
        for i in range(p):
            s.add_clause_lits(v[i])
        for k in range(h):
            for i in range(p):
                for j in range(i):
                    s.add_clause_lits([-v[i][k], -v[j][k]])
        return s

    assert build(None).check([]) == "unsat"
    cfg = ParallelConfig(workers=3, probe_conflicts=20, min_clauses=0,
                         poll_every=16)
    s = build(cfg)
    assert s.check([]) == "unsat"
    st = s.stats()
    assert st["parallel_queries"] == 1
    assert st["clauses_shared"] > 0
    assert s._par_ctx.worker_errors == []
    _assert_closed(s)


# ----------------------------------------------------------------------
# crash / cancellation containment
# ----------------------------------------------------------------------

def test_raising_worker_does_not_change_the_answer():
    cfg = ParallelConfig(workers=2, test_fault={1: "raise"}, **FAST_RACE)
    _, s, inds = _pigeonhole(6, parallel=cfg, validate=True)
    assert s.check(inds) == "unsat"
    assert s.check(inds[:-4]) == "sat"
    # the injected fault surfaced as a recorded error, not an exception
    assert any("injected worker fault" in e
               for e in s._par_ctx.worker_errors)
    _assert_closed(s)


def test_hanging_loser_is_cancelled_not_leaked():
    cfg = ParallelConfig(workers=2, test_fault={1: "hang"}, **FAST_RACE)
    _, s, inds = _pigeonhole(6, parallel=cfg, validate=True)
    assert s.check(inds) == "unsat"
    # channel stays clean: a second query on the same fleet still works
    assert s.check(inds[:-4]) == "sat"
    ctx = s._par_ctx
    procs = [w.proc for w in ctx.workers if w.proc is not None]
    _assert_closed(s)
    for p in procs:
        assert not p.is_alive()


def test_sigkilled_worker_is_respawned_and_answer_unchanged():
    # probe_conflicts=0: every query races, even with a warm learnt DB,
    # so the killed seat is guaranteed to be noticed (mid-race EOF or
    # found-dead at the next sync)
    cfg = ParallelConfig(workers=2, probe_conflicts=0, min_clauses=0)
    _, s, inds = _pigeonhole(6, parallel=cfg, validate=True)
    assert s.check(inds) == "unsat"
    ctx = s._par_ctx
    victim = ctx.workers[1]
    pid = victim.proc.pid

    # kill the worker while the next race is (likely) in flight; even if
    # the shot lands between races the fleet must repair itself
    def sniper():
        time.sleep(0.05)
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            pass

    t = threading.Thread(target=sniper)
    t.start()
    assert s.check(inds) == "unsat"
    t.join()
    victim.proc.join(timeout=5.0)
    assert not victim.proc.is_alive()
    # next query respawns the dead seat and still answers correctly
    assert s.check(inds[:-4]) == "sat"
    assert ctx.worker_crashes + ctx.worker_respawns >= 1
    _assert_closed(s)


def test_close_is_idempotent_and_not_a_crash():
    cfg = ParallelConfig(workers=2, **FAST_RACE)
    _, s, inds = _pigeonhole(5, parallel=cfg)
    assert s.check(inds) == "unsat"
    assert s._par_ctx.worker_crashes == 0
    ctx = s._par_ctx
    s.close()
    s.close()
    assert ctx.worker_crashes == 0
