"""CDCL SAT core tests, including a hypothesis cross-check against a
brute-force evaluator on random CNFs."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt.sat.cnf import normalize_clause
from repro.smt.sat.solver import SatSolver


def make_solver(nvars: int) -> SatSolver:
    s = SatSolver()
    for _ in range(nvars):
        s.new_var()
    return s


class TestBasics:
    def test_empty_problem_is_sat(self):
        assert make_solver(0).solve() is True

    def test_unit_clause(self):
        s = make_solver(1)
        s.add_clause([1])
        assert s.solve() is True
        assert s.model_value(1) is True

    def test_contradictory_units(self):
        s = make_solver(1)
        s.add_clause([1])
        assert s.add_clause([-1]) is False
        assert s.solve() is False

    def test_simple_propagation_chain(self):
        s = make_solver(3)
        s.add_clause([1])
        s.add_clause([-1, 2])
        s.add_clause([-2, 3])
        assert s.solve() is True
        assert s.model_value(3) is True

    def test_classic_unsat(self):
        s = make_solver(2)
        for cl in ([1, 2], [1, -2], [-1, 2], [-1, -2]):
            s.add_clause(cl)
        assert s.solve() is False

    def test_tautology_ignored(self):
        s = make_solver(1)
        s.add_clause([1, -1])
        assert s.solve() is True

    def test_model_satisfies_clauses(self):
        s = make_solver(4)
        clauses = [[1, 2], [-2, 3], [-1, -3, 4], [-4, 2]]
        for cl in clauses:
            s.add_clause(cl)
        assert s.solve() is True
        for cl in clauses:
            assert any(s.model_value(lit) for lit in cl)

    def test_pigeonhole_3_into_2_unsat(self):
        # pigeons p in 1..3, holes h in 1..2; var(p,h) = 2*(p-1)+h
        s = make_solver(6)

        def v(p, h):
            return 2 * (p - 1) + h

        for p in range(1, 4):
            s.add_clause([v(p, 1), v(p, 2)])
        for h in (1, 2):
            for p1, p2 in itertools.combinations(range(1, 4), 2):
                s.add_clause([-v(p1, h), -v(p2, h)])
        assert s.solve() is False


class TestAssumptions:
    def test_sat_flips_with_assumptions(self):
        s = make_solver(2)
        s.add_clause([-1, 2])
        assert s.solve([1]) is True
        assert s.model_value(2) is True
        s2 = make_solver(2)
        s2.add_clause([-1, -2])
        s2.add_clause([-1, 2])
        assert s2.solve([1]) is False
        assert s2.solve([2]) is True

    def test_core_subset_of_assumptions(self):
        s = make_solver(4)
        s.add_clause([-1, -2])
        assert s.solve([3, 1, 4, 2]) is False
        assert s.core is not None
        assert set(s.core) <= {1, 2, 3, 4}
        assert {1, 2} <= set(s.core)

    def test_core_excludes_irrelevant(self):
        s = make_solver(5)
        s.add_clause([-1, 2])
        s.add_clause([-2, 3])
        s.add_clause([-3, -4])
        assert s.solve([5, 1, 4]) is False
        assert 5 not in set(map(abs, s.core))

    def test_incremental_reuse(self):
        s = make_solver(3)
        s.add_clause([-1, 2])
        for _ in range(3):
            assert s.solve([1]) is True
            assert s.model_value(2) is True
            assert s.solve([-2, 1]) is False
            assert s.solve([]) is True

    def test_conflicting_assumption_pair(self):
        s = make_solver(1)
        assert s.solve([1, -1]) is False
        assert set(s.core) == {1, -1} or set(map(abs, s.core)) == {1}

    def test_root_unsat_beats_assumptions(self):
        s = make_solver(2)
        s.add_clause([1])
        s.add_clause([-1])
        assert s.solve([2]) is False
        assert s.core == []


class TestNormalizeClause:
    def test_dedupes_and_sorts(self):
        assert normalize_clause([3, -1, 3]) == [-1, 3]

    def test_tautology_returns_none(self):
        assert normalize_clause([1, -1, 2]) is None

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            normalize_clause([0])


def brute_force_sat(nvars: int, clauses: list[list[int]]) -> bool:
    for bits in itertools.product([False, True], repeat=nvars):
        def val(lit):
            v = bits[abs(lit) - 1]
            return v if lit > 0 else not v
        if all(any(val(l) for l in cl) for cl in clauses):
            return True
    return False


@st.composite
def cnf_instances(draw):
    nvars = draw(st.integers(min_value=1, max_value=6))
    nclauses = draw(st.integers(min_value=0, max_value=14))
    clauses = []
    for _ in range(nclauses):
        width = draw(st.integers(min_value=1, max_value=3))
        lits = draw(st.lists(
            st.integers(min_value=1, max_value=nvars).flatmap(
                lambda v: st.sampled_from([v, -v])),
            min_size=width, max_size=width))
        clauses.append(lits)
    return nvars, clauses


class TestAgainstBruteForce:
    @given(cnf_instances())
    @settings(max_examples=300, deadline=None)
    def test_matches_brute_force(self, inst):
        nvars, clauses = inst
        s = make_solver(nvars)
        for cl in clauses:
            s.add_clause(cl)
        expected = brute_force_sat(nvars, clauses)
        assert s.solve() is expected
        if expected:
            for cl in clauses:
                norm = normalize_clause(cl)
                if norm is None:
                    continue
                assert any(s.model_value(l) for l in norm)

    @given(cnf_instances(), st.lists(st.integers(min_value=1, max_value=6),
                                     max_size=3))
    @settings(max_examples=200, deadline=None)
    def test_assumptions_match_brute_force(self, inst, assump_vars):
        nvars, clauses = inst
        assumptions = [v for v in assump_vars if v <= nvars]
        s = make_solver(nvars)
        for cl in clauses:
            s.add_clause(cl)
        expected = brute_force_sat(nvars, clauses + [[a] for a in assumptions])
        assert s.solve(assumptions) is expected
        if not expected and brute_force_sat(nvars, clauses):
            # the core must itself be unsat with the clauses
            core = s.core
            assert core is not None
            assert not brute_force_sat(nvars, clauses + [[a] for a in core])
