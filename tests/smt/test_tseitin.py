"""Tseitin conversion: equivalence (not just equisatisfiability — we emit
both directions) against a brute-force term evaluator, plus ite
purification."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.smt.sat.solver import SatSolver
from repro.smt.sat.tseitin import CnfBuilder, purify_ites
from repro.smt.terms import Op, Sort, TermFactory


def eval_term(t, env):
    op = t.op
    if op is Op.TRUE:
        return True
    if op is Op.FALSE:
        return False
    if op is Op.VAR:
        return env[t.name]
    if op is Op.NOT:
        return not eval_term(t.args[0], env)
    if op is Op.AND:
        return all(eval_term(a, env) for a in t.args)
    if op is Op.OR:
        return any(eval_term(a, env) for a in t.args)
    if op is Op.IMPLIES:
        return (not eval_term(t.args[0], env)) or eval_term(t.args[1], env)
    if op is Op.IFF:
        return eval_term(t.args[0], env) == eval_term(t.args[1], env)
    if op is Op.ITE:
        return eval_term(t.args[1 if eval_term(t.args[0], env) else 2], env)
    raise AssertionError(op)


@st.composite
def bool_terms(draw, factory):
    names = ["p", "q", "r"]
    depth = draw(st.integers(min_value=0, max_value=4))

    def build(d):
        if d == 0:
            choice = draw(st.integers(0, 4))
            if choice == 4:
                return factory.true if draw(st.booleans()) else factory.false
            return factory.bool_var(names[choice % 3])
        kind = draw(st.integers(0, 5))
        if kind == 0:
            return factory.not_(build(d - 1))
        if kind == 1:
            return factory.and_(build(d - 1), build(d - 1))
        if kind == 2:
            return factory.or_(build(d - 1), build(d - 1))
        if kind == 3:
            return factory.implies(build(d - 1), build(d - 1))
        if kind == 4:
            return factory.iff(build(d - 1), build(d - 1))
        return factory.ite(build(d - 1), build(d - 1), build(d - 1))

    return build(depth)


class TestTseitinEquivalence:
    @given(st.data())
    @settings(max_examples=150, deadline=None)
    def test_lit_tracks_formula_value(self, data):
        factory = TermFactory()
        term = data.draw(bool_terms(factory))
        names = ["p", "q", "r"]
        for bits in itertools.product([False, True], repeat=3):
            env = dict(zip(names, bits))
            solver = SatSolver()
            cnf = CnfBuilder(factory, solver)
            lit = cnf.lit_for(term)
            # pin the variables to this assignment
            for name, value in env.items():
                v = cnf.atom_var(factory.bool_var(name))
                solver.add_clause([v if value else -v])
            expected = eval_term(term, env)
            solver.add_clause([lit if expected else -lit])
            assert solver.solve() is True
            solver2 = SatSolver()
            cnf2 = CnfBuilder(factory, solver2)
            lit2 = cnf2.lit_for(term)
            for name, value in env.items():
                v = cnf2.atom_var(factory.bool_var(name))
                solver2.add_clause([v if value else -v])
            solver2.add_clause([-lit2 if expected else lit2])
            assert solver2.solve() is False


class TestPurifyItes:
    def test_purifies_int_ite(self):
        f = TermFactory()
        x, y = f.int_var("x"), f.int_var("y")
        c = f.bool_var("c")
        t = f.eq(f.ite(c, x, y), f.intconst(0))
        out, defs = purify_ites(f, t)
        assert len(defs) == 2
        from repro.smt.sat.tseitin import _contains_term_ite
        assert not _contains_term_ite(out)
        for d in defs:
            assert not _contains_term_ite(d)

    def test_nested_ites(self):
        f = TermFactory()
        x = f.int_var("x")
        c1, c2 = f.bool_var("c1"), f.bool_var("c2")
        t = f.lt(f.ite(c1, f.ite(c2, x, f.intconst(1)), f.intconst(2)), x)
        out, defs = purify_ites(f, t)
        assert len(defs) == 4

    def test_bool_ite_untouched(self):
        f = TermFactory()
        t = f.ite(f.bool_var("c"), f.bool_var("p"), f.bool_var("q"))
        out, defs = purify_ites(f, t)
        assert out is t and defs == []

    def test_idempotent_when_clean(self):
        f = TermFactory()
        t = f.le(f.int_var("x"), f.int_var("y"))
        out, defs = purify_ites(f, t)
        assert out is t and not defs

    def test_semantics_preserved_via_solver(self):
        from repro.smt.api import Solver
        f = TermFactory()
        x = f.int_var("x")
        c = f.bool_var("c")
        # (if c then 1 else 2) == 1  <=>  c
        t = f.eq(f.ite(c, f.intconst(1), f.intconst(2)), f.intconst(1))
        s = Solver(f)
        s.add(t, f.not_(c))
        assert s.check() == "unsat"
        s2 = Solver(f)
        s2.add(t, c)
        assert s2.check() == "sat"
