"""Array (map) reasoning tests: eager read-over-write elimination and
end-to-end solver behaviour on store chains."""

import pytest

from repro.smt.api import Solver
from repro.smt.terms import Op, TermFactory
from repro.smt.theories.arrays import (contains_select_over_store,
                                       eliminate_stores)


@pytest.fixture()
def f():
    return TermFactory()


class TestRewrite:
    def test_same_index_reads_value(self, f):
        m, x = f.map_var("M"), f.int_var("x")
        t = f.select(f.store(m, x, f.intconst(5)), x)
        assert eliminate_stores(f, t) is f.intconst(5)

    def test_distinct_const_indices_skip_store(self, f):
        m = f.map_var("M")
        t = f.select(f.store(m, f.intconst(1), f.intconst(5)), f.intconst(2))
        assert eliminate_stores(f, t) is f.select(m, f.intconst(2))

    def test_unknown_indices_become_ite(self, f):
        m, x, y = f.map_var("M"), f.int_var("x"), f.int_var("y")
        t = f.select(f.store(m, x, f.intconst(5)), y)
        out = eliminate_stores(f, t)
        assert out.op is Op.ITE
        assert not contains_select_over_store(out)

    def test_store_chain_fully_eliminated(self, f):
        m, x, y, z = (f.map_var("M"), f.int_var("x"), f.int_var("y"),
                      f.int_var("z"))
        chain = f.store(f.store(m, x, f.intconst(1)), y, f.intconst(2))
        t = f.eq(f.select(chain, z), f.intconst(0))
        out = eliminate_stores(f, t)
        assert not contains_select_over_store(out)

    def test_select_of_map_ite(self, f):
        m1, m2 = f.map_var("M1"), f.map_var("M2")
        c = f.bool_var("c")
        t = f.select(f.ite(c, m1, m2), f.int_var("i"))
        out = eliminate_stores(f, t)
        assert out.op is Op.ITE

    def test_rewrite_inside_boolean_structure(self, f):
        m, x = f.map_var("M"), f.int_var("x")
        t = f.and_(f.bool_var("p"),
                   f.eq(f.select(f.store(m, x, f.intconst(1)), x),
                        f.intconst(1)))
        out = eliminate_stores(f, t)
        assert not contains_select_over_store(out)

    def test_no_store_is_identity(self, f):
        m, x = f.map_var("M"), f.int_var("x")
        t = f.eq(f.select(m, x), f.intconst(0))
        assert eliminate_stores(f, t) is t


class TestSolverIntegration:
    def test_read_over_write_same_index(self, f):
        m, x = f.map_var("M"), f.int_var("x")
        s = Solver(f)
        s.add(f.ne(f.select(f.store(m, x, f.intconst(5)), x), f.intconst(5)))
        assert s.check() == "unsat"

    def test_read_over_write_different_index(self, f):
        m, x, y = f.map_var("M"), f.int_var("x"), f.int_var("y")
        s = Solver(f)
        s.add(f.ne(x, y),
              f.ne(f.select(f.store(m, x, f.intconst(5)), y),
                   f.select(m, y)))
        assert s.check() == "unsat"

    def test_two_writes_last_wins(self, f):
        m, x = f.map_var("M"), f.int_var("x")
        chain = f.store(f.store(m, x, f.intconst(1)), x, f.intconst(2))
        s = Solver(f)
        s.add(f.ne(f.select(chain, x), f.intconst(2)))
        assert s.check() == "unsat"

    def test_aliasing_forces_overwrite(self, f):
        # Figure 1's c == buf aliasing: writing Freed[c] then reading
        # Freed[buf] sees the write when c == buf.
        freed, c, buf = f.map_var("Freed"), f.int_var("c"), f.int_var("buf")
        after = f.store(freed, c, f.intconst(1))
        s = Solver(f)
        s.add(f.eq(c, buf),
              f.eq(f.select(after, buf), f.intconst(0)))
        assert s.check() == "unsat"

    def test_no_aliasing_is_satisfiable(self, f):
        freed, c, buf = f.map_var("Freed"), f.int_var("c"), f.int_var("buf")
        after = f.store(freed, c, f.intconst(1))
        s = Solver(f)
        s.add(f.ne(c, buf), f.eq(f.select(after, buf), f.intconst(0)))
        assert s.check() == "sat"

    def test_select_congruence_over_map_vars(self, f):
        m, x, y = f.map_var("M"), f.int_var("x"), f.int_var("y")
        s = Solver(f)
        s.add(f.eq(x, y), f.ne(f.select(m, x), f.select(m, y)))
        assert s.check() == "unsat"


class TestLazyArrayLemmas:
    """Map equalities to store terms (the passive/Boogie encoding) need
    lazy read-over-write instantiation in the theory core."""

    def test_map_equality_same_index(self, f):
        m1, m0, i = f.map_var("M1"), f.map_var("M0"), f.int_var("i")
        s = Solver(f)
        s.add(f.eq(m1, f.store(m0, i, f.intconst(1))),
              f.ne(f.select(m1, i), f.intconst(1)))
        assert s.check() == "unsat"

    def test_map_equality_other_index(self, f):
        m1, m0 = f.map_var("M1"), f.map_var("M0")
        i, j = f.int_var("i"), f.int_var("j")
        s = Solver(f)
        s.add(f.eq(m1, f.store(m0, i, f.intconst(1))),
              f.ne(i, j),
              f.ne(f.select(m1, j), f.select(m0, j)))
        assert s.check() == "unsat"

    def test_map_equality_sat_case(self, f):
        m1, m0 = f.map_var("M1"), f.map_var("M0")
        i, j = f.int_var("i"), f.int_var("j")
        s = Solver(f)
        s.add(f.eq(m1, f.store(m0, i, f.intconst(1))),
              f.ne(f.select(m1, j), f.select(m0, j)))
        assert s.check() == "sat"  # j may alias i

    def test_chained_map_equalities(self, f):
        m2, m1, m0 = (f.map_var(n) for n in ("M2", "M1", "M0"))
        i = f.int_var("i")
        s = Solver(f)
        s.add(f.eq(m1, f.store(m0, i, f.intconst(1))),
              f.eq(m2, f.store(m1, i, f.intconst(2))),
              f.ne(f.select(m2, i), f.intconst(2)))
        assert s.check() == "unsat"

    def test_equality_through_variable_chain(self, f):
        m1, m0, alias = f.map_var("M1"), f.map_var("M0"), f.map_var("A")
        i = f.int_var("i")
        s = Solver(f)
        s.add(f.eq(alias, f.store(m0, i, f.intconst(5))),
              f.eq(m1, alias),
              f.ne(f.select(m1, i), f.intconst(5)))
        assert s.check() == "unsat"
