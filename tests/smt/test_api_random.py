"""End-to-end solver oracle test: random quantifier-free formulas over a
tiny integer domain, cross-checked against brute-force evaluation.

This is the strongest single guard on the SMT stack: if the solver
disagrees with exhaustive enumeration on any formula in the fragment the
VC generator emits (linear atoms, select/store, boolean structure), the
whole analysis is wrong.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.smt.api import Solver
from repro.smt.terms import Op, Sort, TermFactory

VAR_NAMES = ["x", "y"]
MAP_NAMES = ["M"]
DOMAIN = (-1, 0, 1)


@st.composite
def formulas(draw, factory):
    def int_term(d):
        choice = draw(st.integers(0, 5 if d > 0 else 2))
        if choice == 0:
            return factory.intconst(draw(st.sampled_from(DOMAIN)))
        if choice == 1:
            return factory.int_var(draw(st.sampled_from(VAR_NAMES)))
        if choice == 2:
            return factory.select(map_term(max(0, d - 1)),
                                  int_term(max(0, d - 1)))
        if choice == 3:
            return factory.add(int_term(d - 1), int_term(d - 1))
        if choice == 4:
            return factory.sub(int_term(d - 1), int_term(d - 1))
        return factory.mul(factory.intconst(draw(st.sampled_from((-1, 2)))),
                           int_term(d - 1))

    def map_term(d):
        if d == 0 or draw(st.booleans()):
            return factory.map_var(draw(st.sampled_from(MAP_NAMES)))
        return factory.store(map_term(d - 1), int_term(d - 1), int_term(d - 1))

    def formula(d):
        choice = draw(st.integers(0, 6 if d > 0 else 2))
        if choice == 0:
            a, b = int_term(1), int_term(1)
            return factory.eq(a, b)
        if choice == 1:
            return factory.le(int_term(1), int_term(1))
        if choice == 2:
            return factory.lt(int_term(1), int_term(1))
        if choice == 3:
            return factory.not_(formula(d - 1))
        if choice == 4:
            return factory.and_(formula(d - 1), formula(d - 1))
        if choice == 5:
            return factory.or_(formula(d - 1), formula(d - 1))
        return factory.implies(formula(d - 1), formula(d - 1))

    return formula(draw(st.integers(1, 3)))


def eval_term(t, env):
    op = t.op
    if op is Op.INTCONST:
        return t.value
    if op is Op.VAR:
        return env[t.name]
    if op is Op.ADD:
        return eval_term(t.args[0], env) + eval_term(t.args[1], env)
    if op is Op.SUB:
        return eval_term(t.args[0], env) - eval_term(t.args[1], env)
    if op is Op.MUL:
        return eval_term(t.args[0], env) * eval_term(t.args[1], env)
    if op is Op.NEG:
        return -eval_term(t.args[0], env)
    if op is Op.SELECT:
        m = eval_term(t.args[0], env)
        return m.get(eval_term(t.args[1], env), 0)
    if op is Op.STORE:
        m = dict(eval_term(t.args[0], env))
        m[eval_term(t.args[1], env)] = eval_term(t.args[2], env)
        return m
    if op is Op.TRUE:
        return True
    if op is Op.FALSE:
        return False
    if op is Op.EQ:
        return eval_term(t.args[0], env) == eval_term(t.args[1], env)
    if op is Op.LE:
        return eval_term(t.args[0], env) <= eval_term(t.args[1], env)
    if op is Op.LT:
        return eval_term(t.args[0], env) < eval_term(t.args[1], env)
    if op is Op.NOT:
        return not eval_term(t.args[0], env)
    if op is Op.AND:
        return all(eval_term(a, env) for a in t.args)
    if op is Op.OR:
        return any(eval_term(a, env) for a in t.args)
    if op is Op.IMPLIES:
        return (not eval_term(t.args[0], env)) or eval_term(t.args[1], env)
    if op is Op.IFF:
        return eval_term(t.args[0], env) == eval_term(t.args[1], env)
    if op is Op.ITE:
        return eval_term(t.args[1 if eval_term(t.args[0], env) else 2], env)
    raise AssertionError(op)


def brute_force(formula) -> bool:
    """Satisfiable over the small domain?  Map entries are drawn from the
    domain at the relevant indices (indices reachable in the small domain
    plus a default)."""
    idx_domain = (-2, -1, 0, 1, 2)
    for x, y in itertools.product(DOMAIN, repeat=2):
        # enumerate a few map shapes: constant maps over the domain
        for default in DOMAIN:
            for special_idx in (None, 0, 1):
                for special_val in (DOMAIN if special_idx is not None else (0,)):
                    m = {i: default for i in idx_domain}
                    if special_idx is not None:
                        m[special_idx] = special_val
                    env = {"x": x, "y": y, "M": m}
                    if eval_term(formula, env):
                        return True
    return False


@given(st.data())
@settings(max_examples=250, deadline=None)
def test_solver_agrees_with_brute_force(data):
    factory = TermFactory()
    formula = data.draw(formulas(factory))
    s = Solver(factory)
    s.add(formula)
    result = s.check()
    if brute_force(formula):
        # brute force found a model -> the solver must agree
        assert result == "sat"
    elif result == "sat":
        # The solver claims sat although the small-domain search failed;
        # verify the solver's own model satisfies the formula by
        # re-checking the formula's negation under pinned atom values:
        # cheap sanity — every asserted atom valuation must be consistent.
        # (A full model extractor is out of scope; the UNSAT direction is
        # the one the analysis depends on, and it is fully checked above.)
        pass


@given(st.data())
@settings(max_examples=150, deadline=None)
def test_unsat_implies_negation_valid_on_samples(data):
    """If the solver says unsat, no small-domain assignment satisfies."""
    factory = TermFactory()
    formula = data.draw(formulas(factory))
    s = Solver(factory)
    s.add(formula)
    if s.check() == "unsat":
        assert not brute_force(formula)
