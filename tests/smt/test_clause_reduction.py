"""Learnt-clause DB reduction: deletion proofs, answer invariance under
the ``reduce_learnts`` knob, and the decision-heap compaction bound."""

from __future__ import annotations

import itertools
import random

from repro.smt.proofcheck import check_proof
from repro.smt.sat.solver import SatSolver
from repro.smt.tuning import tuning


def make_solver(nvars: int) -> SatSolver:
    s = SatSolver()
    for _ in range(nvars):
        s.new_var()
    return s


def pigeonhole(s: SatSolver, pigeons: int, holes: int) -> None:
    """PHP(pigeons, holes) over vars ``holes*(p-1)+h``; unsat when
    pigeons > holes, and famously conflict-heavy for CDCL."""

    def v(p: int, h: int) -> int:
        return holes * (p - 1) + h

    for p in range(1, pigeons + 1):
        s.add_clause([v(p, h) for h in range(1, holes + 1)])
    for h in range(1, holes + 1):
        for p1, p2 in itertools.combinations(range(1, pigeons + 1), 2):
            s.add_clause([-v(p1, h), -v(p2, h)])


def random_3cnf(rng: random.Random, nvars: int, nclauses: int) -> list:
    clauses = []
    for _ in range(nclauses):
        lits = rng.sample(range(1, nvars + 1), 3)
        clauses.append([l if rng.random() < 0.5 else -l for l in lits])
    return clauses


def force_early_reduction(s: SatSolver) -> None:
    """Drop the reduction thresholds so small test instances exercise the
    reduce path (the production interval of 128 conflicts would never
    fire on them)."""
    s._reduce_interval = 4
    s._next_reduce = 4


class TestReductionProofs:
    def test_reduction_emits_checkable_deletions(self):
        s = make_solver(30)
        s.enable_proof()
        pigeonhole(s, 6, 5)
        force_early_reduction(s)
        assert s.solve() is False
        assert s.reduced_clauses > 0
        tags = [tag for tag, _ in s.proof.steps]
        assert tags.count("d") == s.reduced_clauses
        # the full log, deletions included, still replays from scratch
        assert check_proof(s.proof.steps, require_unsat=True) >= 1

    def test_glue_binary_and_locked_clauses_survive(self):
        s = make_solver(30)
        pigeonhole(s, 6, 5)
        force_early_reduction(s)
        assert s.solve() is False
        for cl in s._learnts:
            assert cl.lbd >= 1  # scored at learn time, before backjump

    def test_knob_off_never_reduces(self):
        with tuning(reduce_learnts=False):
            s = make_solver(30)
        pigeonhole(s, 6, 5)
        force_early_reduction(s)
        assert s.solve() is False
        assert s.reduced_clauses == 0


class TestReductionInvariance:
    def test_answers_match_with_and_without_reduction(self):
        rng = random.Random(7)
        for round_ in range(25):
            nvars = rng.randint(8, 20)
            clauses = random_3cnf(rng, nvars, int(nvars * 4.4))
            answers = []
            for on in (True, False):
                with tuning(reduce_learnts=on):
                    s = make_solver(nvars)
                for cl in clauses:
                    s.add_clause(list(cl))
                if on:
                    force_early_reduction(s)
                answers.append(s.solve())
            assert answers[0] == answers[1], f"round {round_}: {clauses}"


class TestHeapBound:
    def test_restart_heavy_run_keeps_heap_bounded(self):
        # Restarts rebuild the trail wholesale and every unassignment
        # pushes a fresh heap entry, so a conflict-heavy run is exactly
        # the workload that used to leak stale entries without bound.
        s = make_solver(35)
        pigeonhole(s, 7, 5)
        assert s.solve() is False
        assert s.restarts > 0, "instance too easy to exercise restarts"
        assert s.conflicts > 100
        assert len(s._order) <= 2 * s.nvars + 16

    def test_compaction_preserves_completeness(self):
        # After a manual compaction mid-search state (all vars unassigned)
        # every variable must still be branchable: a full solve on a sat
        # instance must find a model.
        rng = random.Random(3)
        s = make_solver(12)
        for cl in random_3cnf(rng, 12, 30):
            s.add_clause(cl)
        # grow the heap artificially, then compact
        for v in range(1, 13):
            s._bump(v)
            s._bump(v)
        s._compact_order()
        assert len(s._order) <= s.nvars
        res = s.solve()
        if res:  # model must cover every variable
            assert all(s.value(v) is not None for v in range(1, 13))
