"""The LIA trail API (push / pop_to / context): verdict equivalence with
the stateless ``check``, push-time bound-propagation conflicts, and
snapshot restoration under pops."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.smt.theories.lia import LiaSolver


def F(coeffs, const):
    return ({k: Fraction(v) for k, v in coeffs.items()}, Fraction(const))


def prem(i):
    return frozenset({("lit", i)})


def trail_verdict(lia: LiaSolver):
    """The DPLL(T) view of the trail: FM feasibility first, then the
    both-sides-refuted disequality sweep."""
    ctx = lia.context()
    return ctx.feasible() or ctx.diseq_conflict()


def stateless_verdict(facts):
    eqs, ineqs, diseqs = [], [], []
    bucket = {"eq": eqs, "le": ineqs, "ne": diseqs}
    for i, (kind, coeffs, const) in enumerate(facts):
        c, k = F(coeffs, const)
        bucket[kind].append((c, k, prem(i)))
    return LiaSolver().check(eqs, ineqs, diseqs)


def push_all(lia: LiaSolver, facts):
    last = None
    for i, (kind, coeffs, const) in enumerate(facts):
        c, k = F(coeffs, const)
        last = lia.push(kind, c, k, prem(i))
    return last


def random_facts(rng: random.Random, n: int):
    names = "xyz"
    facts = []
    for _ in range(n):
        nvars = rng.randint(1, 2)
        coeffs = {v: rng.choice([-2, -1, 1, 2])
                  for v in rng.sample(names, nvars)}
        const = rng.randint(-4, 4)
        kind = rng.choice(["eq", "le", "le", "ne"])
        facts.append((kind, coeffs, const))
    return facts


class TestTrailMatchesStateless:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_systems_same_verdict(self, seed):
        rng = random.Random(seed)
        facts = random_facts(rng, rng.randint(1, 8))
        lia = LiaSolver()
        push_all(lia, facts)
        incremental = trail_verdict(lia)
        stateless = stateless_verdict(facts)
        assert (incremental is None) == (stateless is None), facts
        if incremental is not None:
            # the core names pushed facts only
            assert incremental <= {("lit", i) for i in range(len(facts))}

    def test_push_conflict_implies_stateless_conflict(self):
        # a conflict reported at push time must be a real infeasibility
        for seed in range(40):
            rng = random.Random(1000 + seed)
            facts = random_facts(rng, rng.randint(2, 7))
            lia = LiaSolver()
            if push_all(lia, facts) is not None:
                assert stateless_verdict(facts) is not None, facts


class TestBoundPropagation:
    def test_contradictory_bounds_conflict_at_push(self):
        lia = LiaSolver()
        # x <= 2, then x >= 3: the single-variable bound store must catch
        # this at push time, without running Fourier-Motzkin
        assert lia.push("le", *F({"x": 1}, -2), prem(1)) is None
        conflict = lia.push("le", *F({"x": -1}, 3), prem(2))
        assert conflict == {("lit", 1), ("lit", 2)}

    def test_eq_against_bound_conflicts(self):
        lia = LiaSolver()
        assert lia.push("le", *F({"x": 1}, -2), prem(1)) is None  # x <= 2
        conflict = lia.push("eq", *F({"x": 1}, -5), prem(2))      # x = 5
        assert conflict is not None
        assert ("lit", 2) in conflict

    def test_poisoned_trail_reports_same_conflict_until_popped(self):
        lia = LiaSolver()
        lia.push("le", *F({"x": 1}, -2), prem(1))
        mark = lia.trail_mark()
        first = lia.push("le", *F({"x": -1}, 3), prem(2))
        assert first is not None
        # later pushes and contexts keep reporting a conflict
        assert lia.push("le", *F({"y": 1}, 0), prem(3)) is not None
        assert trail_verdict(lia) is not None
        lia.pop_to(mark)
        assert trail_verdict(lia) is None


class TestPopRestores:
    @pytest.mark.parametrize("seed", range(15))
    def test_pop_then_repush_matches_fresh(self, seed):
        rng = random.Random(2000 + seed)
        base = random_facts(rng, 3)
        detour = random_facts(rng, 4)
        tail = random_facts(rng, 3)

        lia = LiaSolver()
        push_all(lia, base)
        mark = lia.trail_mark()
        push_all(lia, detour)
        lia.pop_to(mark)
        push_all(lia, tail)
        incremental = trail_verdict(lia)

        stateless = stateless_verdict(base + tail)
        assert (incremental is None) == (stateless is None), (base, tail)

    def test_pop_to_zero_resets(self):
        lia = LiaSolver()
        assert lia.push("eq", *F({"x": 1, "y": -1}, 0), prem(1)) is None
        assert lia.push("le", *F({"x": 1}, -1), prem(2)) is None
        lia.pop_to(0)
        assert lia.trail_mark() == 0
        assert not lia._subs and not lia._rows and not lia._dis
        assert not lia._bounds and lia._conflict is None
        assert trail_verdict(lia) is None


class TestContextExtras:
    def test_euf_equations_compose_without_mutating_trail(self):
        lia = LiaSolver()
        lia.push("le", *F({"x": 1}, -2), prem(1))   # x <= 2
        lia.push("le", *F({"y": -1}, 3), prem(2))   # y >= 3
        rows_before = lia._rows
        extra = [F({"x": 1, "y": -1}, 0) + (frozenset({("eq", "xy")}),)]
        ctx = lia.context(extra)                    # x = y: now infeasible
        conflict = ctx.feasible()
        assert conflict is not None
        assert ("eq", "xy") in conflict
        assert lia._rows is rows_before             # side eqs left no trace
        assert trail_verdict(lia) is None
