"""The standalone DRUP checker: hand-crafted valid and invalid proofs,
the textual format, and end-to-end checking of solver-produced logs."""

from __future__ import annotations

import pytest

from repro.smt.api import Solver
from repro.smt.proofcheck import (
    DrupChecker, ProofError, check_proof, check_proof_text, format_proof,
    parse_proof,
)
from repro.smt.terms import TermFactory

# ----------------------------------------------------------------------
# valid proofs
# ----------------------------------------------------------------------


def test_valid_resolution_chain():
    # {1,2} and {-1,2} propositionally imply 2 (RUP), then {−2} refutes.
    n = check_proof_text("""
        i 1 2 0
        i -1 2 0
        a 2 0
        i -2 0
        f 0
    """, require_unsat=True)
    assert n == 2  # the addition and the final clause


def test_valid_derivation_without_final():
    n = check_proof_text("i 1 2 0\ni -1 2 0\na 2 0\n")
    assert n == 1
    with pytest.raises(ProofError, match="no final"):
        check_proof_text("i 1 2 0\ni -1 2 0\na 2 0\n", require_unsat=True)


def test_nonempty_final_is_an_unsat_core():
    # Under assumptions {1, 2} the database {−1 ∨ −2} is unsat; the final
    # clause {−1, −2} certifies exactly that and is not added.
    n = check_proof_text("i -1 -2 0\nf -1 -2 0\n", require_unsat=True)
    assert n == 1


def test_theory_lemma_is_trusted():
    # 't' steps are admitted unchecked (T-valid by construction).
    n = check_proof_text("t 1 0\nt -1 0\nf 0\n", require_unsat=True)
    assert n == 1


def test_empty_input_clause_makes_everything_rup():
    assert check_proof_text("i 0\na 7 0\nf 0\n") == 2


# ----------------------------------------------------------------------
# invalid proofs
# ----------------------------------------------------------------------


def test_bogus_derivation_rejected():
    with pytest.raises(ProofError, match="not RUP"):
        check_proof_text("i 1 2 0\na 3 0\n")


def test_final_that_is_not_rup_rejected():
    with pytest.raises(ProofError, match="not RUP"):
        check_proof_text("i 1 2 0\nf 0\n")


def test_deleted_clause_breaks_dependent_derivation():
    # Once {1,2} is gone, 2 is no longer RUP from {−1,2} alone.
    with pytest.raises(ProofError, match="not RUP"):
        check_proof_text("i 1 2 0\ni -1 2 0\nd 1 2 0\na 2 0\n")
    # ... but the same derivation before the deletion is fine.
    assert check_proof_text("i 1 2 0\ni -1 2 0\na 2 0\nd 1 2 0\n") == 1


def test_deleting_absent_clause_rejected():
    with pytest.raises(ProofError, match="absent"):
        check_proof_text("i 1 2 0\nd 1 3 0\n")


def test_delete_then_final_needing_it_rejected():
    # The assumption-core final clause {-1,-2} is RUP only through the
    # input clause it restates; deleting that clause first must be
    # rejected.  (Unit deletions would not do here: propagated root units
    # are deliberately never retracted, and a root-unsat database makes
    # every later step vacuously RUP.)
    with pytest.raises(ProofError, match="not RUP"):
        check_proof_text("i -1 -2 0\nd -1 -2 0\nf -1 -2 0\n",
                         require_unsat=True)
    # the same certificate with the deletion after the final step is fine
    assert check_proof_text("i -1 -2 0\nf -1 -2 0\nd -1 -2 0\n",
                            require_unsat=True) == 1


def test_interleaved_deletions_valid():
    # Derive 2, use it, retire the originals, then finish from what's left.
    n = check_proof_text("""
        i 1 2 0
        i -1 2 0
        a 2 0
        d 1 2 0
        d -1 2 0
        i -2 0
        f 0
    """, require_unsat=True)
    assert n == 2


def test_step_errors_carry_the_step_index():
    with pytest.raises(ProofError, match="step 1"):
        check_proof([("i", (1, 2)), ("a", (3,))])


# ----------------------------------------------------------------------
# textual format
# ----------------------------------------------------------------------


def test_truncated_step_rejected():
    with pytest.raises(ProofError, match="truncated"):
        parse_proof("a 1 2\n")


def test_unknown_tag_rejected():
    with pytest.raises(ProofError, match="unknown tag"):
        parse_proof("x 1 0\n")


def test_literal_zero_inside_clause_rejected():
    with pytest.raises(ProofError, match="literal 0"):
        parse_proof("i 1 0 2 0\n")


def test_comments_and_blank_lines_ignored():
    assert parse_proof("# header\n\ni 1 0  # trailing\n") == [("i", (1,))]


def test_format_parse_roundtrip():
    steps = [("i", (1, 2)), ("t", (-2, 3)), ("a", (1, 3)), ("d", (1, 2)),
             ("f", ())]
    assert parse_proof(format_proof(steps)) == \
        [(tag, tuple(lits)) for tag, lits in steps]


# ----------------------------------------------------------------------
# solver-produced proofs
# ----------------------------------------------------------------------


def test_solver_log_checks_independently():
    f = TermFactory()
    x, y, z = (f.int_var(v) for v in "xyz")
    s = Solver(f, validate=True)
    s.add(f.lt(x, y), f.lt(y, z), f.lt(z, x))
    assert s.check() == "unsat"
    # The embedded replay already ran; re-check the same log from scratch
    # with a fresh checker to make sure the log is self-contained.
    assert check_proof(s.sat.proof.steps, require_unsat=True) >= 1


def test_solver_log_with_db_reduction_checks_independently():
    # Force the learnt-DB reduction to fire during a validated solve: the
    # log then interleaves 'd' steps with derivations and must still both
    # replay inside the solver (validate=True) and re-check from scratch.
    f = TermFactory()
    xs = [f.int_var(f"x{i}") for i in range(7)]
    s = Solver(f, validate=True)
    s.sat._reduce_interval = 4
    s.sat._next_reduce = 4
    # an odd cycle of strict orders plus pairwise diseq pressure: plenty
    # of conflicts, unsat overall
    for a, b in zip(xs, xs[1:]):
        s.add(f.lt(a, b))
    s.add(f.lt(xs[-1], xs[0]))
    assert s.check() == "unsat"
    assert check_proof(s.sat.proof.steps, require_unsat=True) >= 1
