"""Congruence closure unit tests: merging, congruence propagation,
disequalities, interpreted constants, and explanation quality."""

import pytest

from repro.smt.terms import TermFactory
from repro.smt.theories.euf import EufSolver


@pytest.fixture()
def f():
    return TermFactory()


def lit(i):
    return ("lit", i)


class TestBasicEquality:
    def test_reflexive_transitive(self, f):
        e = EufSolver()
        x, y, z = f.int_var("x"), f.int_var("y"), f.int_var("z")
        assert e.assert_eq(x, y, lit(1)) is None
        assert e.assert_eq(y, z, lit(2)) is None
        assert e.are_equal(x, z)
        assert e.are_equal(x, x)

    def test_not_equal_without_assertion(self, f):
        e = EufSolver()
        x, y = f.int_var("x"), f.int_var("y")
        e.add_term(x)
        e.add_term(y)
        assert not e.are_equal(x, y)

    def test_diseq_then_eq_conflicts(self, f):
        e = EufSolver()
        x, y = f.int_var("x"), f.int_var("y")
        assert e.assert_diseq(x, y, lit(1)) is None
        conflict = e.assert_eq(x, y, lit(2))
        assert conflict is not None
        assert conflict == {lit(1), lit(2)}

    def test_eq_then_diseq_conflicts(self, f):
        e = EufSolver()
        x, y, z = f.int_var("x"), f.int_var("y"), f.int_var("z")
        e.assert_eq(x, y, lit(1))
        e.assert_eq(y, z, lit(2))
        conflict = e.assert_diseq(x, z, lit(3))
        assert conflict == {lit(1), lit(2), lit(3)}

    def test_diseq_between_distinct_classes_ok(self, f):
        e = EufSolver()
        x, y, z = f.int_var("x"), f.int_var("y"), f.int_var("z")
        e.assert_eq(x, y, lit(1))
        assert e.assert_diseq(x, z, lit(2)) is None
        assert e.assert_diseq(y, z, lit(3)) is None


class TestCongruence:
    def test_unary_congruence(self, f):
        e = EufSolver()
        x, y = f.int_var("x"), f.int_var("y")
        gx, gy = f.apply("g", [x]), f.apply("g", [y])
        e.add_term(gx)
        e.add_term(gy)
        e.assert_eq(x, y, lit(1))
        assert e.are_equal(gx, gy)

    def test_congruence_conflict_with_diseq(self, f):
        e = EufSolver()
        x, y = f.int_var("x"), f.int_var("y")
        gx, gy = f.apply("g", [x]), f.apply("g", [y])
        assert e.assert_diseq(gx, gy, lit(1)) is None
        conflict = e.assert_eq(x, y, lit(2))
        assert conflict == {lit(1), lit(2)}

    def test_binary_congruence_needs_both_args(self, f):
        e = EufSolver()
        x, y, u, v = (f.int_var(n) for n in "xyuv")
        h1 = f.apply("h", [x, u])
        h2 = f.apply("h", [y, v])
        e.add_term(h1)
        e.add_term(h2)
        e.assert_eq(x, y, lit(1))
        assert not e.are_equal(h1, h2)
        e.assert_eq(u, v, lit(2))
        assert e.are_equal(h1, h2)

    def test_nested_congruence_chain(self, f):
        e = EufSolver()
        x, y = f.int_var("x"), f.int_var("y")
        ggx = f.apply("g", [f.apply("g", [x])])
        ggy = f.apply("g", [f.apply("g", [y])])
        e.add_term(ggx)
        e.add_term(ggy)
        e.assert_eq(x, y, lit(1))
        assert e.are_equal(ggx, ggy)

    def test_registered_later_still_congruent(self, f):
        e = EufSolver()
        x, y = f.int_var("x"), f.int_var("y")
        e.assert_eq(x, y, lit(1))
        gx, gy = f.apply("g", [x]), f.apply("g", [y])
        e.add_term(gx)
        e.add_term(gy)
        # congruence discovered on registration
        e._process()
        assert e.are_equal(gx, gy)

    def test_different_functions_not_merged(self, f):
        e = EufSolver()
        x, y = f.int_var("x"), f.int_var("y")
        gx, hx = f.apply("g", [x]), f.apply("h", [x])
        e.add_term(gx)
        e.add_term(hx)
        e.assert_eq(x, y, lit(1))
        assert not e.are_equal(gx, hx)


class TestConstants:
    def test_distinct_constants_conflict(self, f):
        e = EufSolver()
        x = f.int_var("x")
        c3, c4 = f.intconst(3), f.intconst(4)
        e.assert_eq(x, c3, lit(1))
        conflict = e.assert_eq(x, c4, lit(2))
        assert conflict == {lit(1), lit(2)}

    def test_same_constant_fine(self, f):
        e = EufSolver()
        x, y = f.int_var("x"), f.int_var("y")
        assert e.assert_eq(x, f.intconst(3), lit(1)) is None
        assert e.assert_eq(y, f.intconst(3), lit(2)) is None
        assert e.assert_eq(x, y, lit(3)) is None

    def test_constant_conflict_via_chain(self, f):
        e = EufSolver()
        xs = [f.int_var(f"x{i}") for i in range(4)]
        e.assert_eq(xs[0], f.intconst(1), lit(1))
        e.assert_eq(xs[3], f.intconst(2), lit(2))
        e.assert_eq(xs[0], xs[1], lit(3))
        e.assert_eq(xs[2], xs[3], lit(4))
        conflict = e.assert_eq(xs[1], xs[2], lit(5))
        assert conflict == {lit(1), lit(2), lit(3), lit(4), lit(5)}


class TestExplanations:
    def test_explain_direct(self, f):
        e = EufSolver()
        x, y = f.int_var("x"), f.int_var("y")
        e.assert_eq(x, y, lit(7))
        assert e.explain(x, y) == {lit(7)}

    def test_explain_chain(self, f):
        e = EufSolver()
        vs = [f.int_var(f"v{i}") for i in range(5)]
        for i in range(4):
            e.assert_eq(vs[i], vs[i + 1], lit(i))
        assert e.explain(vs[0], vs[4]) == {lit(0), lit(1), lit(2), lit(3)}

    def test_explain_is_relevant_subset(self, f):
        e = EufSolver()
        x, y, a, b = (f.int_var(n) for n in "xyab")
        e.assert_eq(x, y, lit(1))
        e.assert_eq(a, b, lit(2))  # unrelated
        assert e.explain(x, y) == {lit(1)}

    def test_explain_through_congruence(self, f):
        e = EufSolver()
        x, y, z = f.int_var("x"), f.int_var("y"), f.int_var("z")
        gx, gy = f.apply("g", [x]), f.apply("g", [y])
        e.add_term(gx)
        e.add_term(gy)
        e.assert_eq(x, y, lit(1))
        e.assert_eq(gy, z, lit(2))
        assert e.explain(gx, z) == {lit(1), lit(2)}

    def test_explain_same_term_empty(self, f):
        e = EufSolver()
        x = f.int_var("x")
        e.add_term(x)
        assert e.explain(x, x) == set()


class TestClasses:
    def test_equivalence_classes(self, f):
        e = EufSolver()
        x, y, z = f.int_var("x"), f.int_var("y"), f.int_var("z")
        e.assert_eq(x, y, lit(1))
        e.add_term(z)
        classes = e.equivalence_classes()
        sizes = sorted(len(m) for m in classes.values())
        assert sizes == [1, 2]
