"""Validate-mode (``validate=True``) end-to-end flows: every answer must
carry an accepted certificate, tampering must be caught, counters must
reflect what was checked."""

from __future__ import annotations

import pytest

from repro.smt.api import CertificateError, Solver, solve_formula
from repro.smt.terms import TermFactory


def test_sat_answer_carries_checked_model():
    f = TermFactory()
    x, y = f.int_var("x"), f.int_var("y")
    s = Solver(f, validate=True)
    s.add(f.lt(x, y), f.le(f.intconst(0), x))
    assert s.check() == "sat"
    assert s.certificates["sat_checked"] == 1
    assert s.last_model is not None
    assert s.last_model.eval_bool(f.lt(x, y))


def test_unsat_answer_carries_checked_proof():
    f = TermFactory()
    x, y, z = (f.int_var(v) for v in "xyz")
    s = Solver(f, validate=True)
    s.add(f.lt(x, y), f.lt(y, z), f.lt(z, x))
    assert s.check() == "unsat"
    assert s.certificates["unsat_checked"] == 1
    assert s.certificates["proof_steps"] > 0


def test_guarded_formulas_certified_when_enabled():
    f = TermFactory()
    x = f.int_var("x")
    s = Solver(f, validate=True)
    ind = s.new_indicator()
    s.add_guarded(ind, f.eq(x, f.intconst(3)))
    assert s.check([ind]) == "sat"
    assert s.last_model.eval_bool(f.eq(x, f.intconst(3)))
    # With the guard disabled the model need not (and does not have to)
    # satisfy the guarded formula; certification must still accept it.
    s.add(f.eq(x, f.intconst(5)))
    assert s.check() == "sat"
    assert s.certificates["sat_checked"] == 2


def test_incremental_checks_accumulate():
    f = TermFactory()
    x = f.int_var("x")
    s = Solver(f, validate=True)
    s.add(f.le(f.intconst(0), x))
    assert s.check() == "sat"
    s.add(f.lt(x, f.intconst(0)))
    assert s.check() == "unsat"
    assert s.certificates["sat_checked"] == 1
    assert s.certificates["unsat_checked"] == 1


def test_tampered_proof_log_rejected():
    f = TermFactory()
    x = f.int_var("x")
    s = Solver(f, validate=True)
    s.add(f.le(f.intconst(0), x))
    assert s.check() == "sat"
    # Inject a derivation the checker cannot reproduce: the replay of the
    # next check() must reject it.
    s.sat.proof.steps.append(("a", (987654,)))
    with pytest.raises(CertificateError, match="proof step"):
        s.check()


def test_validate_off_tracks_nothing():
    f = TermFactory()
    x = f.int_var("x")
    s = Solver(f)
    s.add(f.lt(x, x))
    assert s.check() == "unsat"
    assert s.certificates == {"sat_checked": 0, "unsat_checked": 0,
                              "proof_steps": 0, "lemmas_checked": 0,
                              "lemmas_trusted": 0, "lemmas_shared": 0,
                              "check_wall": 0.0}


def test_solve_formula_validate_flag():
    f = TermFactory()
    x = f.int_var("x")
    assert solve_formula(f, f.lt(x, x), validate=True) == "unsat"
    assert solve_formula(f, f.le(x, x), validate=True) == "sat"
