"""Checked theory lemmas: the independent checker must accept exactly
the justifications that establish T-validity — hand-crafted adversarial
certificates (wrong Farkas coefficients, broken congruence chains,
justifications for a different lemma, truncated derivations, ...) must
all be rejected, and the end-to-end solver must never fall back to
trusting a lemma while ``checked_theory_lemmas`` is on.

The justification formats are documented in
``docs/smt_architecture.md`` ("Theory certificates")."""

from __future__ import annotations

import pytest

from repro.smt.api import CertificateError, Solver
from repro.smt.proofcheck import (DrupChecker, ProofError, check_proof,
                                  verify_justification)
from repro.smt.terms import TermFactory
from repro.smt.theories import lia as lia_mod
from repro.smt.tuning import tuning

# ----------------------------------------------------------------------
# hand-built s-expressions (the checker's term language)
# ----------------------------------------------------------------------

X = ("var", "x", "Int")
A = ("var", "a", "U")
B = ("var", "b", "U")
FA = ("apply", "f", A)
FB = ("apply", "f", B)
GB = ("apply", "g", B)


def _euf_just():
    """a = b  ∧  f(a) ≠ f(b) is EUF-unsat; lemma is (¬1 ∨ 2)."""
    premises = ((1, ("=", A, B)), (-2, ("=", FA, FB)))
    steps = (("prem", 0), ("cong", FA, FB))
    return ("euf", premises, steps, ("ne", 1))


def _lia_just():
    """x ≤ 0  ∧  1 ≤ x is LIA-unsat; lemma is (¬1 ∨ ¬2)."""
    premises = ((1, ("<=", X, ("int", 0))),
                (2, ("<=", ("int", 1), X)))
    script = (("comb", "le", ((1, 1, 0), (1, 1, 1))),)
    return ("lia", premises, script)


# ----------------------------------------------------------------------
# valid justifications are accepted
# ----------------------------------------------------------------------

def test_valid_euf_chain_accepted():
    verify_justification((-1, 2), _euf_just())


def test_valid_farkas_combination_accepted():
    verify_justification((-1, -2), _lia_just())


def test_valid_eq_gcd_refutation_accepted():
    # 2x = 1 has no integer solution: the gcd test refutes it alone.
    two_x = ("*", ("int", 2), X)
    just = ("lia", ((1, ("=", two_x, ("int", 1))),),
            (("comb", "eq", ((1, 1, 0),)),))
    verify_justification((-1,), just)


def test_valid_disequality_split_accepted():
    # x ≠ 0 ∧ x ≤ 0 ∧ 0 ≤ x: both branches of the split refute.
    premises = ((-1, ("=", X, ("int", 0))),
                (2, ("<=", X, ("int", 0))),
                (3, ("<=", ("int", 0), X)))
    script = (("split", 0,
               (("comb", "le", ((1, 1, 3), (1, 1, 2))),),
               (("comb", "le", ((1, 1, 3), (1, 1, 1))),)),)
    verify_justification((1, -2, -3), ("lia", premises, script))


# ----------------------------------------------------------------------
# adversarial justifications are rejected
# ----------------------------------------------------------------------

def test_wrong_farkas_coefficients_rejected():
    # Coefficients (1, 2) cancel nothing: the combination is a valid row
    # but not a contradiction, so the certificate proves nothing.
    premises = ((1, ("<=", X, ("int", 0))),
                (2, ("<=", ("int", 1), X)))
    script = (("comb", "le", ((1, 1, 0), (2, 1, 1))),)
    with pytest.raises(ProofError, match="does not refute"):
        verify_justification((-1, -2), ("lia", premises, script))


def test_negative_farkas_coefficient_rejected():
    premises = ((1, ("<=", X, ("int", 0))),
                (2, ("<=", ("int", 1), X)))
    script = (("comb", "le", ((-1, 1, 0), (1, 1, 1))),)
    with pytest.raises(ProofError, match="negative Farkas coefficient"):
        verify_justification((-1, -2), ("lia", premises, script))


def test_non_integer_combination_rejected():
    # 2x = 2 has the integer solution x = 1: a certificate claiming the
    # gcd test refutes it must be rejected (the combination survives as
    # a row and the script ends without a contradiction).
    two_x = ("*", ("int", 2), X)
    just = ("lia", ((1, ("=", two_x, ("int", 2))),),
            (("comb", "eq", ((1, 2, 0),)),))
    with pytest.raises(ProofError, match="does not refute"):
        verify_justification((-1,), just)


def test_eq_combination_over_inequality_rejected():
    premises = ((1, ("<=", X, ("int", 0))),)
    script = (("comb", "eq", ((1, 1, 0),)),)
    with pytest.raises(ProofError, match="inequality row"):
        verify_justification((-1,), ("lia", premises, script))


def test_combination_over_disequality_row_rejected():
    premises = ((-1, ("=", X, ("int", 0))),)
    script = (("comb", "le", ((1, 1, 0),)),)
    with pytest.raises(ProofError, match="disequality row"):
        verify_justification((1,), ("lia", premises, script))


def test_broken_congruence_chain_rejected():
    # The cong step equates f(a) with g(b): different function symbols.
    premises = ((1, ("=", A, B)), (-2, ("=", FA, GB)))
    steps = (("prem", 0), ("cong", FA, GB))
    with pytest.raises(ProofError):
        verify_justification((-1, 2), ("euf", premises, steps, ("ne", 1)))


def test_truncated_congruence_chain_rejected():
    # Without the cong step the chain never reaches f(a) = f(b).
    premises = ((1, ("=", A, B)), (-2, ("=", FA, FB)))
    steps = (("prem", 0),)
    with pytest.raises(ProofError, match="does not contradict"):
        verify_justification((-1, 2), ("euf", premises, steps, ("ne", 1)))


def test_truncated_lia_script_rejected():
    premises = ((1, ("<=", X, ("int", 0))),
                (2, ("<=", ("int", 1), X)))
    with pytest.raises(ProofError, match="does not refute"):
        verify_justification((-1, -2), ("lia", premises, ()))


def test_split_with_non_refuting_branch_rejected():
    premises = ((-1, ("=", X, ("int", 0))),
                (2, ("<=", X, ("int", 0))),
                (3, ("<=", ("int", 0), X)))
    script = (("split", 0,
               (),  # lower branch proves nothing
               (("comb", "le", ((1, 1, 3), (1, 1, 1))),)),)
    with pytest.raises(ProofError, match="lower branch does not refute"):
        verify_justification((1, -2, -3), ("lia", premises, script))


def test_justification_for_a_different_lemma_rejected():
    # A perfectly valid EUF chain attached to a clause that does not
    # negate its premises certifies nothing about that clause.
    with pytest.raises(ProofError, match="not negated in the lemma"):
        verify_justification((-1, 5), _euf_just())
    with pytest.raises(ProofError, match="not negated in the lemma"):
        verify_justification((-1, 5), _lia_just())


def test_chain_merging_disequality_premise_rejected():
    # Citing a disequality premise as an equality step is unsound.
    premises = ((1, ("=", A, B)), (-2, ("=", FA, FB)))
    steps = (("prem", 1),)
    with pytest.raises(ProofError, match="disequality premise"):
        verify_justification((-1, 2), ("euf", premises, steps, ("ne", 1)))


def test_malformed_garbage_justification_rejected():
    for junk in (("euf",), ("lia", 3, None), ("euf", ((1,),), (), ("ne", 0)),
                 ("nonsense", (), ()), ("lia", ((1, ("<=", X)),), ())):
        with pytest.raises(ProofError):
            verify_justification((-1,), junk)


# ----------------------------------------------------------------------
# checker policy: no trusted fallback, no un-audited sharing
# ----------------------------------------------------------------------

def test_unjustified_lemma_rejected_when_required():
    checker = DrupChecker(require_justified=True)
    with pytest.raises(ProofError, match="unjustified theory lemma"):
        checker.step("t", (-1, -2))


def test_shared_justification_needs_parallel_context():
    checker = DrupChecker(require_justified=True)
    with pytest.raises(ProofError, match="shared-clause justification"):
        checker.step("t", (-1, -2), ("shared", (-2, -1)))
    relaxed = DrupChecker(require_justified=True, allow_shared=True)
    relaxed.step("t", (-1, -2), ("shared", (-2, -1)))
    assert relaxed.theory_shared == 1


def test_variable_cannot_claim_two_atoms():
    checker = DrupChecker(require_justified=True)
    checker.step("t", (-1, -2), _lia_just())
    other = ("lia", ((1, ("<=", X, ("int", 5))),), (("comb", "le", ((1, 1, 0),)),))
    with pytest.raises(ProofError, match="two different theory atoms"):
        checker.step("t", (-1, 7), other)


def test_deferred_flush_catches_invalid_justification():
    checker = DrupChecker(require_justified=True, defer=True)
    premises = ((1, ("<=", X, ("int", 0))),
                (2, ("<=", ("int", 1), X)))
    bad = ("lia", premises, (("comb", "le", ((1, 1, 0), (2, 1, 1))),))
    checker.step("t", (-1, -2), bad)  # inline checks pass; math deferred
    with pytest.raises(ProofError, match="theory lemma at step 1"):
        checker.flush()


def test_check_proof_end_to_end_with_justifications():
    steps = [("i", (1,)), ("i", (2,)),
             ("t", (-1, -2), _lia_just()),
             ("f", ())]
    assert check_proof(steps, require_unsat=True, require_justified=True) >= 1
    checker = DrupChecker(require_justified=True, defer=True)
    for step in steps:
        checker.step(step[0], step[1], step[2] if len(step) > 2 else None)
    checker.flush()
    assert checker.theory_checked == 1
    assert checker.theory_trusted == 0


# ----------------------------------------------------------------------
# mutation-style soundness: the PR 3 pivot-integrality bug
# ----------------------------------------------------------------------

def _pivot_bug_query():
    f = TermFactory()
    x, y = f.int_var("x"), f.int_var("y")
    s = Solver(f, validate=True)
    s.add(f.eq(f.add(f.mul(f.intconst(2), x), y), f.intconst(0)))
    s.add(f.le(x, f.intconst(-1)))
    s.add(f.le(y, f.intconst(1)))
    return s


def test_pr3_pivot_bug_caught_by_checked_lemmas():
    """Re-introducing the PR 3 lossless-pivot bug makes the LIA solver
    derive a lemma that is not T-valid.  The sat-model check never sees
    it (the final answer is unsat either way); only the checked-lemma
    pass refuses to certify it."""
    s = _pivot_bug_query()
    assert s.check() == "unsat"
    assert s.certificates["lemmas_checked"] >= 1
    assert s.certificates["lemmas_trusted"] == 0

    lia_mod.PR3_PIVOT_BUG = True
    try:
        with pytest.raises(CertificateError, match="theory lemma"):
            _pivot_bug_query().check()
        # With the knob off, the unsound derivation sails through as a
        # trusted lemma — exactly the trust gap checked lemmas close.
        with tuning(checked_theory_lemmas=False):
            s2 = _pivot_bug_query()
        assert s2.check() == "unsat"
        assert s2.certificates["lemmas_trusted"] >= 1
        assert s2.certificates["lemmas_checked"] == 0
    finally:
        lia_mod.PR3_PIVOT_BUG = False


# ----------------------------------------------------------------------
# end-to-end: counters and the compat knob
# ----------------------------------------------------------------------

def test_unsat_answers_check_all_lemmas():
    f = TermFactory()
    x, y, z = (f.int_var(v) for v in "xyz")
    s = Solver(f, validate=True)
    s.add(f.lt(x, y), f.lt(y, z), f.lt(z, x))
    assert s.check() == "unsat"
    assert s.certificates["lemmas_checked"] >= 1
    assert s.certificates["lemmas_trusted"] == 0
    assert s.certificates["check_wall"] > 0.0


def test_euf_lemmas_are_checked():
    f = TermFactory()
    a, b = f.int_var("a"), f.int_var("b")
    s = Solver(f, validate=True)
    s.add(f.eq(a, b),
          f.not_(f.eq(f.apply("g", [a]), f.apply("g", [b]))))
    assert s.check() == "unsat"
    assert s.certificates["lemmas_checked"] >= 1
    assert s.certificates["lemmas_trusted"] == 0


def test_knob_off_restores_trusted_lemmas():
    f = TermFactory()
    x, y, z = (f.int_var(v) for v in "xyz")
    with tuning(checked_theory_lemmas=False):
        s = Solver(f, validate=True)
    s.add(f.lt(x, y), f.lt(y, z), f.lt(z, x))
    assert s.check() == "unsat"
    assert s.certificates["lemmas_checked"] == 0
    assert s.certificates["lemmas_trusted"] >= 1
