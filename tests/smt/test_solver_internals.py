"""Internals of the CDCL core: the Luby sequence, incremental variable
addition, learned-clause behavior, and ALL-SAT edge cases."""

import pytest

from repro.smt import Solver, TermFactory, all_sat
from repro.smt.allsat import AllSatBudgetExceeded
from repro.smt.sat.solver import SatSolver, _luby


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == \
            [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


class TestIncrementalVariables:
    def test_vars_added_between_solves(self):
        s = SatSolver()
        a = s.new_var()
        s.add_clause([a])
        assert s.solve() is True
        b = s.new_var()
        s.add_clause([-a, b])
        assert s.solve() is True
        assert s.model_value(b) is True

    def test_many_solves_stable(self):
        s = SatSolver()
        vs = [s.new_var() for _ in range(8)]
        for i in range(7):
            s.add_clause([-vs[i], vs[i + 1]])
        for _ in range(20):
            assert s.solve([vs[0]]) is True
            assert s.model_value(vs[7]) is True
            assert s.solve([-vs[7], vs[0]]) is False

    def test_learned_clauses_persist(self):
        s = SatSolver()
        vs = [s.new_var() for _ in range(10)]
        # xor-ish chain that forces learning
        for i in range(0, 8, 2):
            s.add_clause([vs[i], vs[i + 1]])
            s.add_clause([-vs[i], -vs[i + 1]])
        before = s.solve()
        assert before is True
        conflicts_first = s.conflicts
        assert s.solve() is True  # should reuse learned structure cheaply
        assert s.conflicts >= conflicts_first


class TestStatisticsCounters:
    def test_counters_increase(self):
        s = SatSolver()
        vs = [s.new_var() for _ in range(6)]
        for i in range(5):
            s.add_clause([-vs[i], vs[i + 1]])
        s.add_clause([vs[0]])
        s.solve()
        assert s.propagations > 0


class TestAllSatEdges:
    def test_no_indicators_single_model(self):
        f = TermFactory()
        s = Solver(f)
        s.add(f.le(f.int_var("x"), f.intconst(0)))
        models = all_sat(s, [])
        assert len(models) == 1  # one (empty) projection, then blocked...
        # with no indicators the blocking clause is empty and the guard
        # mechanism would loop; all_sat handles it by blocking everything

    def test_unsat_yields_no_models(self):
        f = TermFactory()
        x = f.int_var("x")
        s = Solver(f)
        s.add(f.lt(x, x))
        assert all_sat(s, []) == []

    def test_limit_raises(self):
        f = TermFactory()
        s = Solver(f)
        lits = [s.lit_for(f.bool_var(f"b{i}")) for i in range(4)]
        with pytest.raises(AllSatBudgetExceeded):
            all_sat(s, lits, limit=3)

    def test_guarded_blocking_confined(self):
        f = TermFactory()
        p = f.bool_var("p")
        s = Solver(f)
        lit = s.lit_for(p)
        guard = s.new_indicator()
        models = all_sat(s, [lit], assumptions=[guard], block_guard=guard)
        assert len(models) == 2
        # without the guard the solver still has both polarities available
        assert s.check([lit]) == "sat"
        assert s.check([-lit]) == "sat"
