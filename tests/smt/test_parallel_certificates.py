"""Checked theory lemmas across the intra-query parallel path: adopted
winner certificates must carry verified (or audited-shared) lemmas and
never fall back to trusting one, and clause sharing must keep the
origin digests that let the arbiter audit worker certificates."""

from __future__ import annotations

import pytest

from repro.smt.api import Solver
from repro.smt.parallel import ParallelConfig
from repro.smt.sat.solver import SatSolver
from repro.smt.terms import TermFactory

FAST_RACE = dict(probe_conflicts=5, min_clauses=0)


def _pigeonhole(n: int, parallel=None):
    f = TermFactory()
    s = Solver(f, validate=True, parallel=parallel)
    xs = [f.int_var(f"x{i}") for i in range(n)]
    for x in xs:
        s.add(f.le(f.intconst(1), x), f.le(x, f.intconst(n - 1)))
    inds = []
    for i in range(n):
        for j in range(i):
            ind = s.new_indicator()
            s.add_guarded(ind, f.not_(f.eq(xs[i], xs[j])))
            inds.append(ind)
    return s, inds


@pytest.mark.parametrize("mode", ["auto", "portfolio", "cubes"])
def test_adopted_unsat_has_no_trusted_lemmas(mode):
    cfg = ParallelConfig(mode=mode, workers=3, **FAST_RACE)
    s, inds = _pigeonhole(6, parallel=cfg)
    assert s.check(inds) == "unsat"
    certs = s.certificates
    assert certs["unsat_checked"] >= 1
    # every theory lemma in the adopted certificate was either verified
    # by the checker or is an audited import from a racing peer; none
    # was taken on trust
    assert certs["lemmas_trusted"] == 0
    assert certs["lemmas_checked"] >= 1
    assert s._par_ctx.worker_errors == []
    s.close()


def test_sequential_and_parallel_agree_on_lemma_counters():
    s0, inds0 = _pigeonhole(5)
    assert s0.check(inds0) == "unsat"
    assert s0.certificates["lemmas_trusted"] == 0

    cfg = ParallelConfig(workers=2, **FAST_RACE)
    s1, inds1 = _pigeonhole(5, parallel=cfg)
    assert s1.check(inds1) == "unsat"
    assert s1.certificates["lemmas_trusted"] == 0
    s1.close()


def test_share_pulse_records_import_digests():
    """Imported clauses carry their parent-id digest into the proof as a
    ``("shared", digest)`` justification and into ``imported_shared``
    (what the worker later reports for the arbiter's audit)."""

    class _StubChannel:
        def __init__(self, items):
            self.items = items
            self.requeued = []

        def pulse(self):
            items, self.items = self.items, []
            return items

        def requeue(self, rest):
            self.requeued.extend(rest)

        def export(self, cl, lbd):
            return False

    solver = SatSolver()
    solver.enable_proof()
    solver.new_var()
    solver.new_var()
    solver.add_clause([1, 2])
    digest = (7, 9)  # parent ids: opaque to the importer
    solver.share = _StubChannel([([-1, 2], digest), [2, 1]])
    assert solver._share_pulse() is None
    assert digest in solver.imported_shared
    # a bare clause (no pair) digests to its own sorted literals
    assert (1, 2) in solver.imported_shared
    shared_steps = [st for st in solver.proof.steps
                    if st[0] == "t" and len(st) > 2
                    and st[2][0] == "shared"]
    assert {st[2][1] for st in shared_steps} == {digest, (1, 2)}


def test_share_pulse_conflict_requeues_remainder():
    class _StubChannel:
        def __init__(self, items):
            self.items = items
            self.requeued = []

        def pulse(self):
            items, self.items = self.items, []
            return items

        def requeue(self, rest):
            self.requeued.extend(rest)

        def export(self, cl, lbd):
            return False

    solver = SatSolver()
    solver.new_var()
    solver.add_clause([1])
    # first import contradicts the root unit; the rest must be requeued
    ch = _StubChannel([([-1], (1,)), ([1], (2,))])
    solver.share = ch
    assert solver._share_pulse() is not None
    assert ch.requeued == [([1], (2,))]
