"""The tuning-preset registry: enumeration, copy semantics, unknown-knob
rejection, and — the part a silent bug hid for a while — every preset
field actually reaching the constructed SAT solver."""

import pytest

from repro.smt.sat.solver import SatSolver
from repro.smt.tuning import (TUNING, get_preset, preset_names,
                              register_preset, tuning)

#: preset knob -> the SatSolver attribute it must land in
_KNOB_TO_ATTR = {
    "var_decay": "_var_decay",
    "restart_base": "_restart_base",
    "restart_luby": "_restart_luby",
    "phase_default": "_phase_default",
    "phase_saving": "_phase_saving",
}


def test_registry_enumerates_baseline_first():
    names = preset_names()
    assert names[0] == "baseline"
    assert len(names) == len(set(names))
    # enough diversity axes for a portfolio of 4+ workers
    assert len(names) >= 5


def test_baseline_preset_is_empty_override():
    assert get_preset("baseline") == {}


def test_get_preset_returns_a_copy():
    before = get_preset("agile")
    mutated = get_preset("agile")
    mutated["var_decay"] = 0.123
    assert get_preset("agile") == before


def test_register_preset_rejects_unknown_knob():
    with pytest.raises(TypeError, match="unknown tuning knob"):
        register_preset("broken-preset", not_a_real_knob=1)
    assert "broken-preset" not in preset_names()


def test_presets_are_pairwise_distinct():
    seen = {}
    for name in preset_names():
        key = tuple(sorted(get_preset(name).items()))
        assert key not in seen, \
            f"{name} duplicates {seen[key]} — no portfolio diversity"
        seen[key] = name


@pytest.mark.parametrize("name", preset_names())
def test_every_preset_field_reaches_the_solver(name):
    """Constructing a solver under a preset must honor every override —
    a preset field the constructor ignores is silent non-diversity."""
    overrides = get_preset(name)
    with tuning(**overrides):
        solver = SatSolver()
        for knob, attr in _KNOB_TO_ATTR.items():
            expected = overrides.get(knob, getattr(TUNING, knob))
            assert getattr(solver, attr) == expected, \
                f"preset {name!r}: {knob} not honored by SatSolver"


def test_solver_defaults_match_tuning_defaults():
    solver = SatSolver()
    for knob, attr in _KNOB_TO_ATTR.items():
        assert getattr(solver, attr) == getattr(TUNING, knob)
