"""The congruence-closure undo trail: popping to a mark must restore the
observable state exactly (equality relation, conflicts, explanations),
matching a fresh solver that only ever saw the surviving prefix."""

from __future__ import annotations

import random

import pytest

from repro.smt.terms import TermFactory
from repro.smt.theories.euf import EufSolver


@pytest.fixture()
def f():
    return TermFactory()


def lit(i):
    return ("lit", i)


def make_universe(f):
    """A small term universe with shared subterms so congruence fires."""
    xs = [f.int_var(n) for n in "wxyz"]
    apps = [f.apply("g", [t]) for t in xs]
    apps += [f.apply("h", [xs[0], t]) for t in xs[2:]]
    return xs + apps


def eq_matrix(e: EufSolver, terms) -> list:
    return [e.are_equal(a, b) for a in terms for b in terms]


def random_ops(rng: random.Random, terms, n: int):
    ops = []
    for i in range(n):
        a, b = rng.sample(terms, 2)
        kind = "diseq" if rng.random() < 0.3 else "eq"
        ops.append((kind, a, b, lit(i)))
    return ops


def apply_ops(e: EufSolver, terms, ops):
    """Replay ops, skipping (like DPLL(T) would) any op that conflicts."""
    for t in terms:
        e.add_term(t)
    applied = []
    for kind, a, b, prem in ops:
        if kind == "eq":
            conflict = e.assert_eq(a, b, prem)
        else:
            conflict = e.assert_diseq(a, b, prem)
        if conflict is None:
            applied.append((kind, a, b, prem))
    return applied


class TestUndoMatchesFreshRebuild:
    @pytest.mark.parametrize("seed", range(12))
    def test_pop_to_mark_restores_equality_relation(self, f, seed):
        rng = random.Random(seed)
        terms = make_universe(f)
        ops = random_ops(rng, terms, 14)
        cut = rng.randint(0, 7)

        e = EufSolver()
        prefix_applied = apply_ops(e, terms, ops[:cut])
        mark = e.mark()
        before = eq_matrix(e, terms)
        apply_ops(e, terms, ops[cut:])
        e.undo_to(mark)
        assert eq_matrix(e, terms) == before

        fresh = EufSolver()
        for t in terms:
            fresh.add_term(t)
        for kind, a, b, prem in prefix_applied:
            if kind == "eq":
                assert fresh.assert_eq(a, b, prem) is None
            else:
                assert fresh.assert_diseq(a, b, prem) is None
        assert eq_matrix(e, terms) == eq_matrix(fresh, terms)

    @pytest.mark.parametrize("seed", range(6))
    def test_nested_marks_pop_in_any_prefix_order(self, f, seed):
        rng = random.Random(100 + seed)
        terms = make_universe(f)
        ops = random_ops(rng, terms, 15)
        e = EufSolver()
        for t in terms:
            e.add_term(t)
        snapshots = []  # (mark, matrix) at every level
        for kind, a, b, prem in ops:
            snapshots.append((e.mark(), eq_matrix(e, terms)))
            if kind == "eq":
                e.assert_eq(a, b, prem)
            else:
                e.assert_diseq(a, b, prem)
        # pop back to a random interior level, then all the way down
        level = rng.randint(0, len(snapshots) - 1)
        for target in (level, 0):
            mark, matrix = snapshots[target]
            e.undo_to(mark)
            assert eq_matrix(e, terms) == matrix


class TestConflictSelfHeal:
    def test_rejected_assert_leaves_state_untouched(self, f):
        e = EufSolver()
        x, y, z = f.int_var("x"), f.int_var("y"), f.int_var("z")
        gx, gy = f.apply("g", [x]), f.apply("g", [y])
        for t in (gx, gy, z):
            e.add_term(t)
        assert e.assert_diseq(gx, gy, lit(1)) is None
        assert e.assert_eq(gy, z, lit(2)) is None
        before = eq_matrix(e, [x, y, z, gx, gy])
        gen = e.generation
        # this merge would congruence-propagate g(x)=g(y): conflict, and
        # the aborted merge (including half-done congruence work) must be
        # rolled back to the entry mark
        conflict = e.assert_eq(x, y, lit(3))
        assert conflict == {lit(1), lit(3)}
        assert eq_matrix(e, [x, y, z, gx, gy]) == before
        assert e.generation > gen  # undo invalidates interface caches
        assert not e._pending

    def test_generation_advances_on_undo(self, f):
        e = EufSolver()
        x, y = f.int_var("x"), f.int_var("y")
        e.add_term(x)
        e.add_term(y)
        mark = e.mark()
        gen = e.generation
        e.assert_eq(x, y, lit(1))
        e.undo_to(mark)
        assert e.generation > gen
        assert not e.are_equal(x, y)


class TestUndoWithTermCreation:
    def test_terms_added_after_mark_are_removed(self, f):
        e = EufSolver()
        x, y = f.int_var("x"), f.int_var("y")
        e.add_term(x)
        e.add_term(y)
        mark = e.mark()
        gx = f.apply("g", [x])
        e.add_term(gx)
        assert gx.tid in e._terms
        e.undo_to(mark)
        assert gx.tid not in e._terms
        # re-adding after the undo works and congruence still fires
        gy = f.apply("g", [y])
        e.add_term(gx)
        e.add_term(gy)
        e.assert_eq(x, y, lit(1))
        assert e.are_equal(gx, gy)
