"""Unit tests for the hash-consed term layer."""

import pytest

from repro.smt.terms import (Op, Sort, SortError, TermFactory, atoms_of,
                             free_vars, pretty_term, substitute, subterms)


@pytest.fixture()
def f():
    return TermFactory()


class TestInterning:
    def test_same_structure_same_object(self, f):
        a = f.add(f.int_var("x"), f.intconst(1))
        b = f.add(f.int_var("x"), f.intconst(1))
        assert a is b

    def test_different_structure_different_object(self, f):
        a = f.add(f.int_var("x"), f.intconst(1))
        b = f.add(f.int_var("x"), f.intconst(2))
        assert a is not b

    def test_vars_interned_by_name_and_sort(self, f):
        assert f.int_var("x") is f.int_var("x")
        assert f.int_var("x") is not f.bool_var("x")

    def test_fresh_vars_are_distinct(self, f):
        a = f.fresh_var("t", Sort.INT)
        b = f.fresh_var("t", Sort.INT)
        assert a is not b

    def test_tids_unique(self, f):
        terms = [f.int_var("x"), f.intconst(3),
                 f.add(f.int_var("x"), f.intconst(3))]
        assert len({t.tid for t in terms}) == 3


class TestConstantFolding:
    def test_add_consts(self, f):
        assert f.add(f.intconst(2), f.intconst(3)) is f.intconst(5)

    def test_add_zero(self, f):
        x = f.int_var("x")
        assert f.add(x, f.intconst(0)) is x
        assert f.add(f.intconst(0), x) is x

    def test_sub_self(self, f):
        x = f.int_var("x")
        assert f.sub(x, x) is f.intconst(0)

    def test_mul_zero_one(self, f):
        x = f.int_var("x")
        assert f.mul(x, f.intconst(0)) is f.intconst(0)
        assert f.mul(f.intconst(1), x) is x

    def test_neg_const(self, f):
        assert f.neg(f.intconst(7)) is f.intconst(-7)

    def test_eq_same_term(self, f):
        x = f.int_var("x")
        assert f.eq(x, x) is f.true

    def test_eq_distinct_consts(self, f):
        assert f.eq(f.intconst(1), f.intconst(2)) is f.false

    def test_le_lt_consts(self, f):
        assert f.le(f.intconst(1), f.intconst(1)) is f.true
        assert f.lt(f.intconst(1), f.intconst(1)) is f.false

    def test_ite_const_cond(self, f):
        x, y = f.int_var("x"), f.int_var("y")
        assert f.ite(f.true, x, y) is x
        assert f.ite(f.false, x, y) is y
        assert f.ite(f.bool_var("b"), x, x) is x


class TestBooleanConstruction:
    def test_not_involutive(self, f):
        p = f.bool_var("p")
        assert f.not_(f.not_(p)) is p

    def test_and_flattening_and_units(self, f):
        p, q, r = (f.bool_var(n) for n in "pqr")
        t = f.and_(p, f.and_(q, r))
        assert t.op is Op.AND and len(t.args) == 3
        assert f.and_(p, f.true) is p
        assert f.and_(p, f.false) is f.false
        assert f.and_() is f.true

    def test_or_flattening_and_units(self, f):
        p, q = f.bool_var("p"), f.bool_var("q")
        assert f.or_(p, f.false) is p
        assert f.or_(p, f.true) is f.true
        assert f.or_() is f.false
        t = f.or_(p, f.or_(q, p))
        assert t.op is Op.OR and len(t.args) == 2  # dedup

    def test_implies_simplifications(self, f):
        p, q = f.bool_var("p"), f.bool_var("q")
        assert f.implies(f.true, q) is q
        assert f.implies(f.false, q) is f.true
        assert f.implies(p, f.true) is f.true
        assert f.implies(p, f.false) is f.not_(p)

    def test_iff_simplifications(self, f):
        p, q = f.bool_var("p"), f.bool_var("q")
        assert f.iff(p, p) is f.true
        assert f.iff(p, f.true) is p
        assert f.iff(f.false, q) is f.not_(q)

    def test_eq_on_bools_becomes_iff(self, f):
        p, q = f.bool_var("p"), f.bool_var("q")
        assert f.eq(p, q).op is Op.IFF

    def test_eq_argument_order_canonical(self, f):
        x, y = f.int_var("x"), f.int_var("y")
        assert f.eq(x, y) is f.eq(y, x)


class TestSortChecking:
    def test_add_rejects_bool(self, f):
        with pytest.raises(SortError):
            f.add(f.bool_var("p"), f.intconst(1))

    def test_eq_rejects_mixed_sorts(self, f):
        with pytest.raises(SortError):
            f.eq(f.int_var("x"), f.map_var("M"))

    def test_select_store_sorts(self, f):
        m, x = f.map_var("M"), f.int_var("x")
        sel = f.select(m, x)
        assert sel.sort is Sort.INT
        st = f.store(m, x, f.intconst(1))
        assert st.sort is Sort.MAP
        with pytest.raises(SortError):
            f.select(x, x)

    def test_ite_branch_mismatch(self, f):
        with pytest.raises(SortError):
            f.ite(f.bool_var("b"), f.int_var("x"), f.map_var("M"))


class TestTraversal:
    def test_subterms(self, f):
        x = f.int_var("x")
        t = f.add(x, f.mul(x, f.intconst(2)))
        subs = list(subterms(t))
        assert t in subs and x in subs and f.intconst(2) in subs
        assert len(subs) == len({s.tid for s in subs})

    def test_free_vars(self, f):
        x, m = f.int_var("x"), f.map_var("M")
        t = f.eq(f.select(m, x), f.intconst(0))
        assert free_vars(t) == {x, m}

    def test_atoms_of_descends_connectives_only(self, f):
        x, y = f.int_var("x"), f.int_var("y")
        a1 = f.le(x, y)
        a2 = f.eq(x, f.intconst(0))
        t = f.and_(a1, f.not_(f.or_(a2, f.bool_var("p"))))
        assert atoms_of(t) == {a1, a2, f.bool_var("p")}

    def test_substitute(self, f):
        x, y = f.int_var("x"), f.int_var("y")
        t = f.le(f.add(x, f.intconst(1)), x)
        s = substitute(f, t, {x: y})
        assert s is f.le(f.add(y, f.intconst(1)), y)

    def test_substitute_shares_unchanged(self, f):
        x, y, z = f.int_var("x"), f.int_var("y"), f.int_var("z")
        t = f.and_(f.le(x, y), f.le(y, z))
        s = substitute(f, t, {f.int_var("w"): x})
        assert s is t


class TestPretty:
    def test_renders_without_crashing(self, f):
        x, m = f.int_var("x"), f.map_var("M")
        t = f.implies(f.eq(f.select(m, x), f.intconst(0)),
                      f.lt(x, f.add(x, f.intconst(1))))
        out = pretty_term(t)
        assert "M[x]" in out and "==>" in out

    def test_store_render(self, f):
        m, x = f.map_var("M"), f.int_var("x")
        assert ":=" in pretty_term(f.store(m, x, f.intconst(1)))
