"""DPLL(T) combination tests: EUF+LIA exchange, boolean structure over
theory atoms, incremental behaviour with theories, and linearization."""

from fractions import Fraction

import pytest

from repro.smt.api import Solver
from repro.smt.dpllt import linearize
from repro.smt.terms import TermFactory


@pytest.fixture()
def f():
    return TermFactory()


class TestLinearize:
    def test_constants_fold(self, f):
        coeffs, const, keys = linearize(
            f.add(f.intconst(2), f.intconst(3)))
        assert coeffs == {} and const == 5

    def test_linear_combination(self, f):
        x, y = f.int_var("x"), f.int_var("y")
        t = f.sub(f.add(x, f.mul(f.intconst(3), y)), x)
        coeffs, const, keys = linearize(t)
        assert coeffs == {y.tid: Fraction(3)}
        assert const == 0

    def test_neg(self, f):
        x = f.int_var("x")
        coeffs, const, _ = linearize(f.neg(f.add(x, f.intconst(1))))
        assert coeffs == {x.tid: Fraction(-1)} and const == -1

    def test_nonlinear_is_opaque(self, f):
        x, y = f.int_var("x"), f.int_var("y")
        t = f.mul(x, y)
        coeffs, const, keys = linearize(t)
        assert coeffs == {t.tid: Fraction(1)}
        assert t.tid in keys

    def test_select_is_opaque(self, f):
        m, x = f.map_var("M"), f.int_var("x")
        sel = f.select(m, x)
        coeffs, _, keys = linearize(f.add(sel, f.intconst(1)))
        assert coeffs == {sel.tid: Fraction(1)}


class TestCombination:
    def test_euf_feeds_lia(self, f):
        # x = y (EUF), x <= 3, y >= 4  -> unsat via the equality
        x, y = f.int_var("x"), f.int_var("y")
        s = Solver(f)
        s.add(f.eq(x, y), f.le(x, f.intconst(3)), f.ge(y, f.intconst(4)))
        assert s.check() == "unsat"

    def test_lia_feeds_euf(self, f):
        x, y = f.int_var("x"), f.int_var("y")
        s = Solver(f)
        s.add(f.le(x, y), f.le(y, x),
              f.ne(f.apply("g", [x]), f.apply("g", [y])))
        assert s.check() == "unsat"

    def test_lia_feeds_euf_via_constants(self, f):
        x, y = f.int_var("x"), f.int_var("y")
        s = Solver(f)
        s.add(f.eq(x, f.intconst(2)), f.eq(y, f.intconst(2)),
              f.ne(f.apply("g", [x]), f.apply("g", [y])))
        assert s.check() == "unsat"

    def test_function_over_arithmetic_argument(self, f):
        x = f.int_var("x")
        gx1 = f.apply("g", [f.add(x, f.intconst(1))])
        s = Solver(f)
        s.add(f.eq(x, f.intconst(1)),
              f.ne(gx1, f.apply("g", [f.intconst(2)])))
        assert s.check() == "unsat"

    def test_sat_when_equality_not_forced(self, f):
        x, y = f.int_var("x"), f.int_var("y")
        s = Solver(f)
        s.add(f.le(x, y), f.ne(f.apply("g", [x]), f.apply("g", [y])))
        assert s.check() == "sat"

    def test_disequality_split(self, f):
        # 0 <= x <= 1, x != 0, x != 1 -> unsat over integers
        x = f.int_var("x")
        s = Solver(f)
        s.add(f.le(f.intconst(0), x), f.le(x, f.intconst(1)),
              f.ne(x, f.intconst(0)), f.ne(x, f.intconst(1)))
        assert s.check() == "unsat"

    def test_boolean_structure_over_atoms(self, f):
        x, y = f.int_var("x"), f.int_var("y")
        s = Solver(f)
        s.add(f.or_(f.lt(x, y), f.lt(y, x)), f.eq(x, y))
        assert s.check() == "unsat"

    def test_implication_triggers_theory(self, f):
        x = f.int_var("x")
        p = f.bool_var("p")
        s = Solver(f)
        s.add(f.implies(p, f.le(x, f.intconst(0))),
              f.implies(f.not_(p), f.le(x, f.intconst(0))),
              f.ge(x, f.intconst(1)))
        assert s.check() == "unsat"

    def test_uninterpreted_predicate_congruence(self, f):
        # predicates encode as apply(...) != 0
        x, y = f.int_var("x"), f.int_var("y")
        px = f.ne(f.apply("p", [x]), f.intconst(0))
        py = f.ne(f.apply("p", [y]), f.intconst(0))
        s = Solver(f)
        s.add(f.eq(x, y), px, f.not_(py))
        assert s.check() == "unsat"


class TestIncrementalWithTheories:
    def test_assumption_isolation(self, f):
        x, y = f.int_var("x"), f.int_var("y")
        s = Solver(f)
        i1 = s.new_indicator()
        i2 = s.new_indicator()
        s.add_guarded(i1, f.lt(x, y))
        s.add_guarded(i2, f.lt(y, x))
        assert s.check([i1]) == "sat"
        assert s.check([i2]) == "sat"
        assert s.check([i1, i2]) == "unsat"
        assert s.check([i1]) == "sat"  # recovers after conflict
        assert s.check([]) == "sat"

    def test_many_sequential_queries(self, f):
        x = f.int_var("x")
        s = Solver(f)
        inds = []
        for k in range(8):
            ind = s.new_indicator()
            s.add_guarded(ind, f.eq(x, f.intconst(k)))
            inds.append(ind)
        for a in inds:
            assert s.check([a]) == "sat"
        assert s.check(inds[:2]) == "unsat"

    def test_theory_lemmas_persist_safely(self, f):
        # a theory conflict learned under one assumption set must not
        # poison a different one
        x, y = f.int_var("x"), f.int_var("y")
        gx, gy = f.apply("g", [x]), f.apply("g", [y])
        s = Solver(f)
        i1 = s.new_indicator()
        s.add_guarded(i1, f.and_(f.le(x, y), f.le(y, x), f.ne(gx, gy)))
        assert s.check([i1]) == "unsat"
        assert s.check([]) == "sat"
        assert s.check([-i1]) == "sat"
