"""Model extraction tests: hand cases plus the closing of the random-
testing loop — every 'sat' answer on random formulas is certified by a
concrete, independently evaluated model."""

from hypothesis import given, settings, strategies as st

from repro.smt import Solver, TermFactory
from repro.smt.model import Model, extract_model


class TestHandCases:
    def test_lia_bounds(self):
        f = TermFactory()
        x, y = f.int_var("x"), f.int_var("y")
        s = Solver(f)
        s.add(f.lt(x, y), f.le(y, f.intconst(3)), f.ge(x, f.intconst(1)))
        assert s.check() == "sat"
        m = extract_model(s)
        assert m is not None
        assert 1 <= m.var_values["x"] < m.var_values["y"] <= 3

    def test_equalities_respected(self):
        f = TermFactory()
        x, y = f.int_var("x"), f.int_var("y")
        s = Solver(f)
        s.add(f.eq(x, y), f.eq(y, f.intconst(7)))
        assert s.check() == "sat"
        m = extract_model(s)
        assert m.var_values["x"] == m.var_values["y"] == 7

    def test_disequalities_respected(self):
        f = TermFactory()
        x, y = f.int_var("x"), f.int_var("y")
        s = Solver(f)
        s.add(f.ne(x, y), f.le(f.intconst(0), x), f.le(x, f.intconst(1)),
              f.le(f.intconst(0), y), f.le(y, f.intconst(1)))
        assert s.check() == "sat"
        m = extract_model(s)
        assert m.var_values["x"] != m.var_values["y"]
        assert {m.var_values["x"], m.var_values["y"]} == {0, 1}

    def test_map_cells(self):
        f = TermFactory()
        m_, x, y = f.map_var("M"), f.int_var("x"), f.int_var("y")
        s = Solver(f)
        s.add(f.eq(f.select(m_, x), f.intconst(5)),
              f.ne(f.select(m_, y), f.intconst(5)))
        assert s.check() == "sat"
        m = extract_model(s)
        assert m is not None
        entries, default = m.map_values["M"]
        xv, yv = m.var_values["x"], m.var_values["y"]
        assert entries.get(xv, default) == 5
        assert entries.get(yv, default) != 5

    def test_function_table_congruent(self):
        f = TermFactory()
        x, y = f.int_var("x"), f.int_var("y")
        s = Solver(f)
        s.add(f.eq(x, y),
              f.eq(f.apply("g", [x]), f.intconst(2)))
        assert s.check() == "sat"
        m = extract_model(s)
        assert m.fun_tables[("g", (m.var_values["x"],))] == 2

    def test_store_chain_evaluation(self):
        f = TermFactory()
        m_, x = f.map_var("M"), f.int_var("x")
        s = Solver(f)
        s.add(f.eq(x, f.intconst(4)))
        assert s.check() == "sat"
        m = extract_model(s)
        t = f.select(f.store(m_, x, f.intconst(9)), f.intconst(4))
        assert m.eval_int(t) == 9

    def test_bool_vars(self):
        f = TermFactory()
        p, q = f.bool_var("p"), f.bool_var("q")
        s = Solver(f)
        s.add(f.or_(p, q), f.not_(p))
        assert s.check() == "sat"
        m = extract_model(s)
        assert m.eval_bool(q) and not m.eval_bool(p)

    def test_ite_evaluation(self):
        m = Model({"x": 3, "c": 1}, {}, {})
        f = TermFactory()
        t = f.ite(f.bool_var("c"), f.int_var("x"), f.intconst(0))
        assert m.eval_int(t) == 3


# ----------------------------------------------------------------------
# close the loop on the random solver tests
# ----------------------------------------------------------------------

from .test_api_random import formulas  # noqa: E402


@given(st.data())
@settings(max_examples=200, deadline=None)
def test_every_sat_answer_has_a_genuine_model(data):
    factory = TermFactory()
    formula = data.draw(formulas(factory))
    s = Solver(factory)
    s.add(formula)
    if s.check() != "sat":
        return
    model = extract_model(s)
    # extraction is best-effort, but in the VC fragment (what `formulas`
    # generates) it must succeed
    assert model is not None
    assert model.eval_bool(formula) is True
