"""Linear integer arithmetic solver tests: feasibility, explanations,
integer tightening, disequalities, entailment, and a hypothesis
cross-check against brute-force integer enumeration."""

import itertools
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt.theories.lia import LiaBudgetExceeded, LiaSolver, _tighten


def C(coeffs, const, *prem):
    return ({k: Fraction(v) for k, v in coeffs.items()}, Fraction(const),
            frozenset(prem))


@pytest.fixture()
def lia():
    return LiaSolver()


class TestFeasibility:
    def test_empty_feasible(self, lia):
        assert lia.check([], [], []) is None

    def test_single_bound_feasible(self, lia):
        assert lia.check([], [C({"x": 1}, -5)], []) is None  # x <= 5

    def test_contradictory_bounds(self, lia):
        # x <= 2 and x >= 3  (i.e. -x + 3 <= 0)
        core = lia.check([], [C({"x": 1}, -2, "a"), C({"x": -1}, 3, "b")], [])
        assert core == {"a", "b"}

    def test_transitive_chain_unsat(self, lia):
        # x < y, y < z, z < x  over ints: x - y + 1 <= 0 etc.
        cs = [C({"x": 1, "y": -1}, 1, "a"),
              C({"y": 1, "z": -1}, 1, "b"),
              C({"z": 1, "x": -1}, 1, "c")]
        assert lia.check([], cs, []) == {"a", "b", "c"}

    def test_explanation_excludes_irrelevant(self, lia):
        cs = [C({"x": 1}, -2, "a"), C({"x": -1}, 3, "b"),
              C({"w": 1}, -100, "junk")]
        core = lia.check([], cs, [])
        assert core == {"a", "b"}

    def test_equation_infeasible_constant(self, lia):
        assert lia.check([C({}, 1, "e")], [], []) == {"e"}

    def test_equations_substitute(self, lia):
        # x = y, x <= 0, y >= 1
        core = lia.check([C({"x": 1, "y": -1}, 0, "e")],
                         [C({"x": 1}, 0, "a"), C({"y": -1}, 1, "b")], [])
        assert core == {"e", "a", "b"}

    def test_gcd_infeasible_equation(self, lia):
        # 2x + 4y = 1 has no integer solution
        assert lia.check([C({"x": 2, "y": 4}, -1, "e")], [], []) == {"e"}

    def test_integer_tightening_catches_gap(self, lia):
        # 1 <= 2x <= 1 over integers is infeasible (x = 1/2)
        cs = [C({"x": 2}, -1, "a"),   # 2x <= 1
              C({"x": -2}, 1, "b")]   # 2x >= 1
        assert lia.check([], cs, []) == {"a", "b"}

    def test_rational_relaxation_feasible_case(self, lia):
        cs = [C({"x": 2}, -4, "a"), C({"x": -2}, 2, "b")]  # 1 <= x <= 2
        assert lia.check([], cs, []) is None


class TestDisequalities:
    def test_diseq_forced_equal_conflicts(self, lia):
        # x <= y, y <= x, x != y
        core = lia.check([], [C({"x": 1, "y": -1}, 0, "a"),
                              C({"y": 1, "x": -1}, 0, "b")],
                         [C({"x": 1, "y": -1}, 0, "d")])
        assert core == {"a", "b", "d"}

    def test_diseq_with_room_feasible(self, lia):
        assert lia.check([], [C({"x": 1, "y": -1}, 0, "a")],
                         [C({"x": 1, "y": -1}, 0, "d")]) is None

    def test_diseq_constant(self, lia):
        # x = 5 (as equation), x != 5
        core = lia.check([C({"x": 1}, -5, "e")], [],
                         [C({"x": 1}, -5, "d")])
        assert core == {"e", "d"}

    def test_multiple_diseqs_ok(self, lia):
        assert lia.check([], [],
                         [C({"x": 1, "y": -1}, 0, "d1"),
                          C({"x": 1, "z": -1}, 0, "d2")]) is None


class TestEntailsEq:
    def test_entailed_equality(self, lia):
        ineqs = [C({"x": 1, "y": -1}, 0, "a"), C({"y": 1, "x": -1}, 0, "b")]
        prem = lia.entails_eq([], ineqs, {"x": Fraction(1), "y": Fraction(-1)},
                              Fraction(0))
        assert prem == {"a", "b"}

    def test_not_entailed(self, lia):
        ineqs = [C({"x": 1, "y": -1}, 0, "a")]
        assert lia.entails_eq([], ineqs,
                              {"x": Fraction(1), "y": Fraction(-1)},
                              Fraction(0)) is None

    def test_entailed_via_constants(self, lia):
        eqs = [C({"x": 1}, -3, "e1"), C({"y": 1}, -3, "e2")]
        prem = lia.entails_eq(eqs, [], {"x": Fraction(1), "y": Fraction(-1)},
                              Fraction(0))
        assert prem == {"e1", "e2"}


class TestTighten:
    def test_divides_by_gcd_and_floors(self):
        coeffs, const = _tighten({"x": Fraction(2)}, Fraction(-3))  # 2x <= 3
        assert coeffs == {"x": Fraction(1)}
        assert const == Fraction(-1)  # x <= 1

    def test_fractional_coefficients_cleared(self):
        coeffs, const = _tighten({"x": Fraction(1, 2)}, Fraction(-1))
        assert coeffs == {"x": Fraction(1)}
        assert const == Fraction(-2)

    def test_empty_passthrough(self):
        coeffs, const = _tighten({}, Fraction(5))
        assert coeffs == {} and const == Fraction(5)


class TestBudget:
    def test_budget_exceeded_raises(self):
        lia = LiaSolver(budget=3)
        n = 6
        cs = []
        for i in range(n):
            cs.append(C({f"x{i}": 1, f"x{(i+1) % n}": -1}, 0, f"a{i}"))
            cs.append(C({f"x{i}": -1, f"x{(i+1) % n}": 1}, -1, f"b{i}"))
        with pytest.raises(LiaBudgetExceeded):
            lia.check([], cs * 3, [])


def brute_force_feasible(ineqs, eqs, bound=4):
    vars_ = sorted({v for cs in (ineqs + eqs) for v in cs[0]})
    for vals in itertools.product(range(-bound, bound + 1), repeat=len(vars_)):
        env = dict(zip(vars_, vals))
        ok = True
        for coeffs, const, _ in ineqs:
            if sum(env[v] * c for v, c in coeffs.items()) + const > 0:
                ok = False
                break
        if ok:
            for coeffs, const, _ in eqs:
                if sum(env[v] * c for v, c in coeffs.items()) + const != 0:
                    ok = False
                    break
        if ok:
            return True
    return False


@st.composite
def lia_instances(draw):
    nvars = draw(st.integers(1, 3))
    vars_ = [f"x{i}" for i in range(nvars)]
    n_ineq = draw(st.integers(0, 5))
    n_eq = draw(st.integers(0, 2))

    def constraint(tag, idx):
        coeffs = {}
        for v in vars_:
            c = draw(st.integers(-2, 2))
            if c:
                coeffs[v] = Fraction(c)
        const = Fraction(draw(st.integers(-4, 4)))
        return (coeffs, const, frozenset({f"{tag}{idx}"}))

    ineqs = [constraint("i", k) for k in range(n_ineq)]
    eqs = [constraint("e", k) for k in range(n_eq)]
    return eqs, ineqs


class TestAgainstBruteForce:
    @given(lia_instances())
    @settings(max_examples=200, deadline=None)
    def test_infeasibility_sound(self, inst):
        """If the solver says infeasible, brute force must agree; if brute
        force finds a small solution, the solver must say feasible.  (The
        solver may be feasible with only large-magnitude solutions, which
        the bounded brute force cannot see — so only one direction of the
        small-model check applies.)"""
        eqs, ineqs = inst
        lia = LiaSolver()
        core = lia.check(eqs, ineqs, [])
        if core is not None:
            assert not brute_force_feasible(ineqs, eqs, bound=6)
            # the core alone must also be infeasible
            core_ineqs = [c for c in ineqs if c[2] <= core]
            core_eqs = [c for c in eqs if c[2] <= core]
            assert lia.check(core_eqs, core_ineqs, []) is not None
        elif brute_force_feasible(ineqs, eqs, bound=4):
            assert core is None
