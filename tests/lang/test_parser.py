"""Parser tests for the mini-Boogie surface syntax."""

import pytest

from repro.lang.ast import (AndExpr, AssertStmt, AssignStmt, AssumeStmt,
                            BinExpr, BoolLit, CallStmt, HavocStmt, IfStmt,
                            ImpliesExpr, IntLit, MapAssignStmt, NotExpr,
                            OrExpr, PredAppExpr, RelExpr, ReturnStmt,
                            SelectExpr, SeqStmt, SkipStmt, Type, VarExpr,
                            WhileStmt)
from repro.lang.parser import ParseError, parse_procedure, parse_program


def body_of(src: str):
    return parse_procedure(src).body


class TestDeclarations:
    def test_globals(self):
        p = parse_program("var g: int; var M: [int]int;")
        assert p.globals == {"g": Type.INT, "M": Type.MAP}

    def test_function_decl(self):
        p = parse_program("function f(int, int): int;")
        assert p.functions == {"f": 2}

    def test_procedure_signature(self):
        proc = parse_procedure(
            "procedure P(x: int, M: [int]int) returns (r: int) { r := x; }")
        assert proc.params == ("x", "M")
        assert proc.returns == ("r",)
        assert proc.var_types["M"] == Type.MAP

    def test_spec_only_procedure(self):
        p = parse_program("procedure Ext(x: int) returns (r: int);")
        assert p.proc("Ext").body is None

    def test_contracts(self):
        prog = parse_program("""
            var g: int;
            procedure P(x: int)
              requires x > 0;
              ensures x >= 0;
              modifies g;
            { skip; }
        """)
        proc = prog.proc("P")
        assert isinstance(proc.requires, RelExpr)
        assert proc.modifies == ("g",)

    def test_locals(self):
        proc = parse_procedure("""
            procedure P() {
              var t: int;
              var M: [int]int;
              t := 1;
            }
        """)
        assert proc.locals == ("t", "M")


class TestStatements:
    def test_assign_and_map_assign(self):
        b = body_of("procedure P(x: int) { var M: [int]int; "
                    "x := x + 1; M[x] := 2; }")
        assert isinstance(b, SeqStmt)
        assert isinstance(b.stmts[0], AssignStmt)
        assert isinstance(b.stmts[1], MapAssignStmt)

    def test_labeled_assert(self):
        b = body_of("procedure P(x: int) { A1: assert x == 0; }")
        assert isinstance(b, AssertStmt)
        assert b.label == "A1"

    def test_assume_havoc_skip_return(self):
        b = body_of("procedure P(x: int) { assume x > 0; havoc x; "
                    "skip; return; }")
        kinds = [type(s) for s in b.stmts]
        assert kinds == [AssumeStmt, HavocStmt, ReturnStmt]

    def test_nondet_if(self):
        b = body_of("procedure P(x: int) { if (*) { x := 1; } }")
        assert isinstance(b, IfStmt)
        assert b.cond is None
        assert isinstance(b.els, SkipStmt)

    def test_if_else_chain(self):
        b = body_of("""
            procedure P(x: int) {
              if (x == 0) { x := 1; }
              else if (x == 1) { x := 2; }
              else { x := 3; }
            }
        """)
        assert isinstance(b, IfStmt)
        assert isinstance(b.els, IfStmt)

    def test_while(self):
        b = body_of("procedure P(x: int) { while (x < 10) { x := x + 1; } }")
        assert isinstance(b, WhileStmt)
        assert isinstance(b.cond, RelExpr)

    def test_nondet_while(self):
        b = body_of("procedure P(x: int) { while (*) { x := x + 1; } }")
        assert isinstance(b, WhileStmt)
        assert b.cond is None

    def test_call_forms(self):
        prog = parse_program("""
            procedure Callee(a: int) returns (r: int);
            procedure P(x: int) {
              call x := Callee(x + 1);
              call Callee2();
            }
            procedure Callee2();
        """)
        b = prog.proc("P").body
        call1, call2 = b.stmts
        assert call1.lhs == ("x",) and call1.callee == "Callee"
        assert isinstance(call1.args[0], BinExpr)
        assert call2.lhs == () and call2.callee == "Callee2"


class TestFormulas:
    def test_precedence_and_or(self):
        b = body_of("procedure P(x: int) "
                    "{ assume x == 0 || x == 1 && x == 2; }")
        f = b.formula if isinstance(b, AssumeStmt) else b.stmts[0].formula
        assert isinstance(f, OrExpr)
        assert isinstance(f.args[1], AndExpr)

    def test_implies_right_assoc(self):
        b = body_of("procedure P(x: int) "
                    "{ assume x == 0 ==> x == 1 ==> x == 2; }")
        f = b.formula
        assert isinstance(f, ImpliesExpr)
        assert isinstance(f.rhs, ImpliesExpr)

    def test_not_and_parens(self):
        b = body_of("procedure P(x: int) { assume !(x == 0) && x < 5; }")
        f = b.formula
        assert isinstance(f, AndExpr)
        assert isinstance(f.args[0], NotExpr)

    def test_parenthesized_arithmetic_comparison(self):
        b = body_of("procedure P(x: int, y: int) { assume (x + 1) < y; }")
        f = b.formula
        assert isinstance(f, RelExpr)
        assert f.op == "<"

    def test_map_select_in_formula(self):
        b = body_of("procedure P(M: [int]int, i: int) { assume M[i] == 0; }")
        f = b.formula
        assert isinstance(f.lhs, SelectExpr)

    def test_uninterpreted_predicate(self):
        b = body_of("procedure P(x: int) { assume valid(x); }")
        assert isinstance(b.formula, PredAppExpr)

    def test_booleans(self):
        b = body_of("procedure P() { assume true; assert false; }")
        assert b.stmts[0].formula == BoolLit(True)
        assert b.stmts[1].formula == BoolLit(False)


class TestExpressions:
    def test_arith_precedence(self):
        b = body_of("procedure P(x: int) { x := 1 + 2 * x; }")
        e = b.expr
        assert e.op == "+"
        assert e.rhs.op == "*"

    def test_unary_minus(self):
        b = body_of("procedure P(x: int) { x := -x + 1; }")
        assert b.expr.op == "+"

    def test_nested_select(self):
        b = body_of("procedure P(M: [int]int, i: int) { i := M[M[i]]; }")
        e = b.expr
        assert isinstance(e, SelectExpr)
        assert isinstance(e.index, SelectExpr)

    def test_function_application(self):
        prog = parse_program("function f(int): int; "
                             "procedure P(x: int) { x := f(x) + f(0); }")
        assert prog.functions["f"] == 1


class TestErrors:
    @pytest.mark.parametrize("src", [
        "procedure P( { }",
        "procedure P() { x := ; }",
        "procedure P() { assert ; }",
        "var x int;",
        "procedure P() { if x { } }",
        "procedure P() { call ; }",
    ])
    def test_syntax_errors_raise(self, src):
        with pytest.raises(ParseError):
            parse_program(src)

    def test_two_procedures_rejected_by_parse_procedure(self):
        with pytest.raises(ParseError):
            parse_procedure("procedure A() {skip;} procedure B() {skip;}")
