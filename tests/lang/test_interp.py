"""Reference interpreter tests."""

import pytest

from repro.lang.ast import Type
from repro.lang.interp import (ExecStatus, Interpreter, MapValue,
                               initial_state)
from repro.lang.parser import parse_procedure, parse_program
from repro.lang.transform import instrument
from repro.lang.typecheck import typecheck


def run(src: str, values: dict, chooser=None, instrumented: bool = True):
    prog = typecheck(parse_program(src))
    proc = next(p for p in prog.procedures.values() if p.body is not None)
    body = instrument(proc.body) if instrumented else proc.body
    interp = Interpreter(chooser=chooser)
    state = initial_state(proc, values=values,
                          program_globals=prog.globals)
    return interp.run(body, state)


class TestBasics:
    def test_assign_and_arith(self):
        res = run("procedure P(x: int) { x := x * 2 + 1; }", {"x": 5})
        assert res.status == ExecStatus.NORMAL
        assert res.state["x"] == 11

    def test_assert_pass_and_fail(self):
        ok = run("procedure P(x: int) { assert x > 0; }", {"x": 1})
        assert ok.status == ExecStatus.NORMAL
        bad = run("procedure P(x: int) { A: assert x > 0; }", {"x": 0})
        assert bad.status == ExecStatus.ASSERT_FAIL
        assert bad.failed_assert.label == "A"

    def test_assume_blocks(self):
        res = run("procedure P(x: int) { assume x > 0; x := 9; }", {"x": 0})
        assert res.status == ExecStatus.BLOCKED
        assert res.state["x"] == 0

    def test_failure_terminates(self):
        res = run("procedure P(x: int) { assert x > 0; x := 42; }", {"x": -1})
        assert res.status == ExecStatus.ASSERT_FAIL
        assert res.state["x"] == -1

    def test_first_failure_reported(self):
        res = run("""
            procedure P(x: int) {
              A1: assert x > 0;
              A2: assert x > 1;
            }
        """, {"x": 0})
        assert res.failed_assert.label == "A1"

    def test_conditional(self):
        src = """
            procedure P(x: int, y: int) {
              if (x == 0) { y := 1; } else { y := 2; }
            }
        """
        assert run(src, {"x": 0}).state["y"] == 1
        assert run(src, {"x": 7}).state["y"] == 2

    def test_nondet_if_uses_chooser(self):
        src = "procedure P(y: int) { if (*) { y := 1; } else { y := 2; } }"
        take_then = iter([1]).__next__
        assert run(src, {}, chooser=take_then).state["y"] == 1
        take_else = iter([0]).__next__
        assert run(src, {}, chooser=take_else).state["y"] == 2

    def test_havoc_uses_chooser(self):
        src = "procedure P(y: int) { havoc y; }"
        res = run(src, {"y": 0}, chooser=iter([42]).__next__)
        assert res.state["y"] == 42


class TestMaps:
    def test_map_read_write(self):
        src = """
            procedure P(M: [int]int, i: int, v: int) {
              M[i] := M[i] + v;
              A: assert M[i] > 0;
            }
        """
        res = run(src, {"M": MapValue({3: 1}), "i": 3, "v": 2})
        assert res.status == ExecStatus.NORMAL
        assert res.state["M"].get(3) == 3

    def test_map_default(self):
        m = MapValue({}, default=7)
        assert m.get(999) == 7

    def test_map_store_persistence(self):
        m = MapValue({})
        m2 = m.set(1, 5)
        assert m.get(1) == 0 and m2.get(1) == 5

    def test_store_expr_in_formula_context(self):
        src = """
            procedure P(M: [int]int, i: int) {
              assume M[i] == 0;
              M[i] := 1;
              A: assert M[i] == 1;
            }
        """
        res = run(src, {"M": MapValue({}), "i": 5})
        assert res.status == ExecStatus.NORMAL


class TestLocations:
    def test_visited_locations_recorded(self):
        src = """
            procedure P(x: int) {
              if (x == 0) { skip; } else { skip; }
            }
        """
        res = run(src, {"x": 0})
        # instrumented: entry + then-loc visited, else-loc not
        assert len(res.visited_locations) == 2

    def test_assume_location_only_when_passed(self):
        src = "procedure P(x: int) { assume x > 0; skip; }"
        passed = run(src, {"x": 1})
        blocked = run(src, {"x": 0})
        assert len(passed.visited_locations) == 2  # entry + after-assume
        assert len(blocked.visited_locations) == 1  # entry only


class TestUninterpreted:
    def test_fun_table_pins_values(self):
        src = "procedure P(x: int) { x := inc(x); }"
        prog = typecheck(parse_program(src))
        proc = prog.proc("P")
        interp = Interpreter(fun_table={("inc", (5,)): 6})
        state = initial_state(proc, values={"x": 5})
        res = interp.run(proc.body, state)
        assert res.state["x"] == 6

    def test_hash_function_congruent(self):
        src = "procedure P(x: int, y: int, z: int) { y := h(x); z := h(x); }"
        prog = typecheck(parse_program(src))
        proc = prog.proc("P")
        interp = Interpreter()
        state = initial_state(proc, values={"x": 3})
        res = interp.run(proc.body, state)
        assert res.state["y"] == res.state["z"]

    def test_unbound_variable_raises(self):
        from repro.lang.ast import VarExpr
        with pytest.raises(KeyError):
            Interpreter().eval_expr(VarExpr("nope"), {})


class TestInitialState:
    def test_types_respected(self):
        prog = typecheck(parse_program(
            "var G: [int]int; procedure P(x: int) { x := G[x]; }"))
        state = initial_state(prog.proc("P"), values={},
                              program_globals=prog.globals)
        assert isinstance(state["G"], MapValue)
        assert isinstance(state["x"], int)
