"""Property tests: ``parse(pretty(p)) == p`` over the fuzz generator's
presets, plus generator determinism and well-typedness.

The generator builds ASTs in the parser normal form (see
``repro.fuzz.gen``), so structural equality after a round trip is exact
— any drift between the pretty-printer and the parser shows up here on
hundreds of programs per preset."""

from __future__ import annotations

import random

import pytest

from repro.fuzz import gen
from repro.fuzz.gen import GenConfig, ProgramGen, generate_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pp_program
from repro.lang.typecheck import typecheck

PRESETS = {
    "general": gen.GENERAL,
    "deterministic": gen.DETERMINISTIC,
    "brute": gen.BRUTE,
    "solver": gen.SOLVER,
    "multiproc": gen.MULTIPROC,
}


@pytest.mark.parametrize("name", sorted(PRESETS), ids=sorted(PRESETS))
def test_roundtrip_over_presets(name: str):
    config = PRESETS[name]
    for seed in range(60):
        program = generate_program(seed, config)
        typecheck(program)  # generated programs are always well-typed
        src = pp_program(program)
        assert parse_program(src) == program, \
            f"{name} seed {seed}: parse(pretty(p)) != p\n{src}"


def test_roundtrip_is_involutive_on_text():
    # pretty(parse(pretty(p))) == pretty(p): the printer is a fixpoint.
    for seed in range(40):
        src = pp_program(generate_program(seed, gen.GENERAL))
        assert pp_program(parse_program(src)) == src


def test_generator_is_deterministic():
    for seed in (0, 7, 123):
        a = generate_program(seed, gen.GENERAL)
        b = generate_program(seed, gen.GENERAL)
        assert a == b
        assert pp_program(a) == pp_program(b)


def test_generator_respects_deterministic_fragment():
    src_union = "".join(pp_program(generate_program(s, gen.DETERMINISTIC))
                        for s in range(50))
    assert "havoc" not in src_union
    assert "(*)" not in src_union


def test_brute_preset_is_int_only_and_boxed():
    for seed in range(30):
        p = generate_program(seed, gen.BRUTE)
        assert not p.functions
        src = pp_program(p)
        assert "[int]int" not in src
        assert "while" not in src
        # every program in the preset opens with its domain prelude
        assert f"-{gen.DEFAULT_DOMAIN_BOUND} <=" in src


def test_shared_rng_yields_distinct_programs():
    rng = random.Random(0)
    g = ProgramGen(rng, GenConfig())
    assert g.program() != g.program()
