"""Transformation tests: call elaboration, loop unrolling, return
elimination, instrumentation."""

import pytest

from repro.lang.ast import (AssertStmt, AssignStmt, AssumeStmt, HavocStmt,
                            IfStmt, LocationStmt, RelExpr, ReturnStmt,
                            SeqStmt, SkipStmt, VarExpr, WhileStmt,
                            asserts_in, locations_in, walk_stmts)
from repro.lang.parser import parse_program
from repro.lang.transform import (elaborate_calls, eliminate_returns,
                                  instrument, is_lambda_const,
                                  lambda_const, prepare_procedure,
                                  unroll_loops)
from repro.lang.typecheck import typecheck


PROG = typecheck(parse_program("""
var g: int;

procedure Callee(a: int) returns (r: int)
  requires a > 0;
  ensures r > a;
  modifies g;
  ;

procedure Caller(x: int) returns (y: int)
{
  call y := Callee(x + 1);
}
"""))


class TestCallElaboration:
    def test_fresh_constants_mode(self):
        proc = elaborate_calls(PROG, PROG.proc("Caller"))
        stmts = list(walk_stmts(proc.body))
        asserts = [s for s in stmts if isinstance(s, AssertStmt)]
        assumes = [s for s in stmts if isinstance(s, AssumeStmt)]
        assigns = [s for s in stmts if isinstance(s, AssignStmt)]
        assert len(asserts) == 1          # assert pre[e/x]
        assert len(assumes) == 1          # assume post
        assert len(assigns) == 2          # g and y get lam$ constants
        for a in assigns:
            assert isinstance(a.expr, VarExpr)
            assert is_lambda_const(a.expr.name)
        # lam constants registered as variables
        lam_names = [a.expr.name for a in assigns]
        for n in lam_names:
            assert n in proc.var_types

    def test_precondition_substituted(self):
        proc = elaborate_calls(PROG, PROG.proc("Caller"))
        a = [s for s in walk_stmts(proc.body) if isinstance(s, AssertStmt)][0]
        # requires a > 0 with a := x + 1
        assert isinstance(a.formula, RelExpr)
        assert a.formula.op == ">"

    def test_havoc_returns_mode(self):
        proc = elaborate_calls(PROG, PROG.proc("Caller"), havoc_returns=True)
        stmts = list(walk_stmts(proc.body))
        havocs = [s for s in stmts if isinstance(s, HavocStmt)]
        assigns = [s for s in stmts if isinstance(s, AssignStmt)]
        assert len(havocs) == 1
        assert set(havocs[0].vars) == {"g", "y"}
        assert not assigns

    def test_unique_sites_get_unique_constants(self):
        prog = typecheck(parse_program("""
            procedure E() returns (r: int);
            procedure P(x: int) {
              var a: int;
              var b: int;
              call a := E();
              call b := E();
            }
        """))
        proc = elaborate_calls(prog, prog.proc("P"))
        assigns = [s for s in walk_stmts(proc.body)
                   if isinstance(s, AssignStmt)]
        names = {a.expr.name for a in assigns}
        assert len(names) == 2

    def test_lambda_const_naming(self):
        assert lambda_const(3, "free", "Freed") == "lam$3$free$Freed"
        assert is_lambda_const("lam$3$free$Freed")
        assert not is_lambda_const("lamb")


class TestUnrollLoops:
    def test_unroll_depth(self):
        prog = parse_program(
            "procedure P(x: int) { while (x < 3) { x := x + 1; } }")
        body = unroll_loops(prog.proc("P").body, depth=2)
        ifs = [s for s in walk_stmts(body) if isinstance(s, IfStmt)]
        assert len(ifs) == 2
        assert not any(isinstance(s, WhileStmt) for s in walk_stmts(body))
        # innermost tail assumes the exit condition
        assumes = [s for s in walk_stmts(body) if isinstance(s, AssumeStmt)]
        assert len(assumes) == 1

    def test_nondet_loop_no_assume(self):
        prog = parse_program(
            "procedure P(x: int) { while (*) { x := x + 1; } }")
        body = unroll_loops(prog.proc("P").body, depth=2)
        assert not any(isinstance(s, AssumeStmt) for s in walk_stmts(body))
        ifs = [s for s in walk_stmts(body) if isinstance(s, IfStmt)]
        assert len(ifs) == 2 and all(i.cond is None for i in ifs)

    def test_nested_loops(self):
        prog = parse_program("""
            procedure P(x: int) {
              while (x < 3) { while (x < 2) { x := x + 1; } }
            }
        """)
        body = unroll_loops(prog.proc("P").body, depth=2)
        assert not any(isinstance(s, WhileStmt) for s in walk_stmts(body))


class TestEliminateReturns:
    def test_top_level_return_drops_suffix(self):
        prog = parse_program(
            "procedure P(x: int) { x := 1; return; x := 2; }")
        body = eliminate_returns(prog.proc("P").body)
        assigns = [s for s in walk_stmts(body) if isinstance(s, AssignStmt)]
        assert len(assigns) == 1

    def test_branch_return_duplicates_continuation(self):
        prog = parse_program("""
            procedure P(x: int) {
              if (x == 0) { return; }
              x := 5;
            }
        """)
        body = eliminate_returns(prog.proc("P").body)
        assert not any(isinstance(s, ReturnStmt) for s in walk_stmts(body))
        # x := 5 must live in the else side only
        top = body
        assert isinstance(top, IfStmt)
        then_assigns = [s for s in walk_stmts(top.then)
                        if isinstance(s, AssignStmt)]
        els_assigns = [s for s in walk_stmts(top.els)
                       if isinstance(s, AssignStmt)]
        assert not then_assigns
        assert len(els_assigns) == 1

    def test_both_branches_return(self):
        prog = parse_program("""
            procedure P(x: int) {
              if (x == 0) { x := 1; return; } else { x := 2; return; }
              x := 3;
            }
        """)
        body = eliminate_returns(prog.proc("P").body)
        assigns = [s.expr.value for s in walk_stmts(body)
                   if isinstance(s, AssignStmt)]
        assert 3 not in assigns

    def test_return_in_loop_rejected(self):
        prog = parse_program(
            "procedure P(x: int) { while (*) { return; } }")
        with pytest.raises(ValueError):
            eliminate_returns(prog.proc("P").body)

    def test_no_return_identity_shape(self):
        prog = parse_program("procedure P(x: int) { x := 1; x := 2; }")
        body = eliminate_returns(prog.proc("P").body)
        assigns = [s for s in walk_stmts(body) if isinstance(s, AssignStmt)]
        assert len(assigns) == 2


class TestInstrument:
    def test_assert_ids_in_program_order(self):
        prog = parse_program("""
            procedure P(x: int) {
              assert x == 0;
              if (*) { assert x == 1; } else { assert x == 2; }
              assert x == 3;
            }
        """)
        body = instrument(prog.proc("P").body)
        ids = [a.aid for a in asserts_in(body)]
        assert ids == [0, 1, 2, 3]

    def test_labels_preserved_or_generated(self):
        prog = parse_program("""
            procedure P(x: int) {
              L: assert x == 0;
              assert x == 1;
            }
        """)
        body = instrument(prog.proc("P").body)
        labels = [a.label for a in asserts_in(body)]
        assert labels[0] == "L"
        assert labels[1] == "A1"

    def test_locations_inside_branches_and_after_assumes(self):
        prog = parse_program("""
            procedure P(x: int) {
              assume x > 0;
              if (x == 1) { skip; } else { skip; }
            }
        """)
        body = instrument(prog.proc("P").body)
        locs = locations_in(body)
        kinds = sorted(l.describes for l in locs)
        assert kinds == ["after-assume", "else", "entry", "then"]

    def test_while_rejected(self):
        prog = parse_program("procedure P(x: int) { while (*) { skip; } }")
        with pytest.raises(ValueError):
            instrument(prog.proc("P").body)


class TestPreparePipeline:
    def test_full_pipeline(self):
        prog = typecheck(parse_program("""
            var g: int;
            procedure E() returns (r: int);
            procedure P(x: int) {
              var t: int;
              call t := E();
              while (t < 2) { t := t + 1; }
              if (t == 0) { return; }
              assert t > 0;
            }
        """))
        proc = prepare_procedure(prog, prog.proc("P"))
        for s in walk_stmts(proc.body):
            assert not isinstance(s, (WhileStmt, ReturnStmt))
        assert asserts_in(proc.body)
        assert locations_in(proc.body)
        # all asserts have ids
        assert all(a.aid is not None for a in asserts_in(proc.body))

    def test_spec_only_proc_passthrough(self):
        prog = typecheck(parse_program("procedure E() returns (r: int);"))
        proc = prepare_procedure(prog, prog.proc("E"))
        assert proc.body is None
