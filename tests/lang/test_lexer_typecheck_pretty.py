"""Lexer, type checker, and pretty-printer round-trip tests."""

import pytest

from repro.lang.lexer import LexError, Token, tokenize
from repro.lang.parser import parse_program
from repro.lang.pretty import pp_program
from repro.lang.typecheck import TypeError_, typecheck


class TestLexer:
    def test_keywords_vs_identifiers(self):
        toks = tokenize("var varx assert asserting")
        kinds = [(t.kind, t.text) for t in toks[:-1]]
        assert kinds == [("kw", "var"), ("id", "varx"),
                         ("kw", "assert"), ("id", "asserting")]

    def test_punct_longest_match(self):
        toks = tokenize("<==> ==> == = <= <")
        texts = [t.text for t in toks[:-1]]
        assert texts == ["<==>", "==>", "==", "=", "<=", "<"]

    def test_comments_skipped(self):
        toks = tokenize("x // line comment\n /* block\ncomment */ y")
        texts = [t.text for t in toks[:-1]]
        assert texts == ["x", "y"]

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 4]

    def test_dollar_identifiers(self):
        toks = tokenize("lam$1$free$Freed deref$3")
        assert toks[0].text == "lam$1$free$Freed"
        assert toks[1].text == "deref$3"

    def test_unterminated_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* oops")

    def test_bad_character_raises(self):
        with pytest.raises(LexError):
            tokenize("x @ y")

    def test_numbers(self):
        toks = tokenize("123 0 42")
        assert [t.kind for t in toks[:-1]] == ["int"] * 3


GOOD = """
var g: int;
var M: [int]int;
function f(int): int;

procedure P(x: int) returns (r: int)
  requires x > 0;
  modifies g;
{
  var t: int;
  t := f(x) + M[x];
  if (t == 0) { r := 1; } else { r := 2; }
}
"""


class TestTypecheck:
    def test_good_program_passes(self):
        typecheck(parse_program(GOOD))

    @pytest.mark.parametrize("src,fragment", [
        ("procedure P() { x := 1; }", "undeclared"),
        ("procedure P(M: [int]int) { M := 1; }", "assigning"),
        ("procedure P(x: int) { x[0] := 1; }", "indexing non-map"),
        ("var g: int; procedure P(M: [int]int) { assume M < M; }",
         "ordering"),
        ("procedure P(x: int) { call x := Q(); }", "unknown procedure"),
        ("procedure Q(a: int); procedure P(x: int) { call Q(); }",
         "with 0 args"),
        ("procedure Q() returns (r: int); procedure P(x: int) { call Q(); }",
         "binds 0"),
        ("procedure P(x: int) modifies x; { skip; }", "non-global"),
        ("function f(int): int; procedure P(x: int) { x := f(x, x); }",
         "applied to 2"),
    ])
    def test_errors(self, src, fragment):
        with pytest.raises(TypeError_) as exc:
            typecheck(parse_program(src))
        assert fragment in str(exc.value)

    def test_map_equality_allowed(self):
        typecheck(parse_program(
            "procedure P(M: [int]int, N: [int]int) { assume M == N; }"))


class TestPrettyRoundTrip:
    def test_parse_pp_parse_fixpoint(self):
        prog1 = typecheck(parse_program(GOOD))
        text1 = pp_program(prog1)
        prog2 = typecheck(parse_program(text1))
        text2 = pp_program(prog2)
        assert text1 == text2

    def test_roundtrip_preserves_structure(self):
        prog1 = parse_program(GOOD)
        prog2 = parse_program(pp_program(prog1))
        assert prog1.globals == prog2.globals
        assert prog1.functions == prog2.functions
        p1, p2 = prog1.proc("P"), prog2.proc("P")
        assert p1.params == p2.params
        assert p1.body == p2.body

    def test_spec_only_roundtrip(self):
        src = "procedure E(x: int) returns (r: int);"
        prog1 = parse_program(src)
        prog2 = parse_program(pp_program(prog1))
        assert prog2.proc("E").body is None

    def test_nondet_constructs_roundtrip(self):
        src = ("procedure P(x: int) { if (*) { havoc x; } "
               "while (*) { x := x + 1; } }")
        prog1 = parse_program(src)
        prog2 = parse_program(pp_program(prog1))
        assert prog1.proc("P").body == prog2.proc("P").body
