"""Substitution laws, checked against the reference interpreter:
``eval(subst(f, x->e), s) == eval(f, s[x -> eval(e, s)])``."""

from hypothesis import given, settings, strategies as st

from repro.lang.ast import (BinExpr, IntLit, RelExpr, SelectExpr,
                            StoreExpr, VarExpr, mk_and, mk_not, mk_or)
from repro.lang.interp import Interpreter, MapValue
from repro.lang.subst import subst_expr, subst_formula

VARS = ["x", "y", "z"]


@st.composite
def exprs(draw, depth=2):
    kind = draw(st.integers(0, 2 if depth == 0 else 3))
    if kind == 0:
        return IntLit(draw(st.integers(-3, 3)))
    if kind in (1, 2):
        return VarExpr(draw(st.sampled_from(VARS)))
    op = draw(st.sampled_from(["+", "-", "*"]))
    return BinExpr(op, draw(exprs(depth=depth - 1)),
                   draw(exprs(depth=depth - 1)))


@st.composite
def formulas(draw, depth=2):
    kind = draw(st.integers(0, 0 if depth == 0 else 2))
    if kind == 0:
        op = draw(st.sampled_from(["==", "!=", "<", "<="]))
        return RelExpr(op, draw(exprs()), draw(exprs()))
    if kind == 1:
        return mk_not(draw(formulas(depth=depth - 1)))
    return mk_and(draw(formulas(depth=depth - 1)),
                  draw(formulas(depth=depth - 1)))


@given(exprs(), st.sampled_from(VARS), exprs(),
       st.tuples(st.integers(-3, 3), st.integers(-3, 3), st.integers(-3, 3)))
@settings(max_examples=300, deadline=None)
def test_expr_substitution_law(target, var, replacement, values):
    interp = Interpreter()
    state = dict(zip(VARS, values))
    substituted = subst_expr(target, {var: replacement})
    lhs = interp.eval_expr(substituted, dict(state))
    state2 = dict(state)
    state2[var] = interp.eval_expr(replacement, dict(state))
    rhs = interp.eval_expr(target, state2)
    assert lhs == rhs


@given(formulas(), st.sampled_from(VARS), exprs(),
       st.tuples(st.integers(-3, 3), st.integers(-3, 3), st.integers(-3, 3)))
@settings(max_examples=300, deadline=None)
def test_formula_substitution_law(target, var, replacement, values):
    interp = Interpreter()
    state = dict(zip(VARS, values))
    substituted = subst_formula(target, {var: replacement})
    lhs = interp.eval_formula(substituted, dict(state))
    state2 = dict(state)
    state2[var] = interp.eval_expr(replacement, dict(state))
    rhs = interp.eval_formula(target, state2)
    assert lhs == rhs


class TestMapSubstitution:
    def test_store_substitution_for_map_var(self):
        # M -> store(M, i, v) inside a select: the wp(M[i]:=v) mechanism
        fm = RelExpr("==", SelectExpr(VarExpr("M"), VarExpr("j")), IntLit(0))
        out = subst_formula(fm, {
            "M": StoreExpr(VarExpr("M"), VarExpr("i"), IntLit(1))})
        interp = Interpreter()
        state = {"M": MapValue({}), "i": 5, "j": 5}
        assert interp.eval_formula(out, state) is False  # M[5]=1 now
        state = {"M": MapValue({}), "i": 5, "j": 6}
        assert interp.eval_formula(out, state) is True

    def test_simultaneous_substitution(self):
        fm = RelExpr("<", VarExpr("x"), VarExpr("y"))
        out = subst_formula(fm, {"x": VarExpr("y"), "y": VarExpr("x")})
        # swap, not sequential: x<y becomes y<x
        assert out == RelExpr("<", VarExpr("y"), VarExpr("x"))

    def test_identity_when_unmapped(self):
        fm = RelExpr("==", VarExpr("x"), IntLit(0))
        assert subst_formula(fm, {"q": IntLit(1)}) == fm
