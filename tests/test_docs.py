"""The documentation must stay checkable: relative links resolve and
fenced python snippets compile (tools/check_docs.py, also run by CI)."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def test_docs_links_and_snippets():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_docs.py")],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr


def test_readme_links_every_doc():
    readme = (REPO / "README.md").read_text()
    for doc in sorted((REPO / "docs").glob("*.md")):
        assert f"docs/{doc.name}" in readme, (
            f"README.md does not mention docs/{doc.name}")
