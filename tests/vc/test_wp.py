"""Weakest-precondition transformer tests, including the definitional
property against the reference interpreter: for deterministic programs,
a state satisfies wp(body, true) iff executing from it fails no assertion.
"""

from hypothesis import given, settings, strategies as st

from repro.lang.ast import (AssertStmt, AssignStmt, AssumeStmt, BinExpr,
                            BoolLit, IfStmt, IntLit, RelExpr, SeqStmt,
                            SkipStmt, VarExpr, seq)
from repro.lang.interp import ExecStatus, Interpreter
from repro.lang.parser import parse_procedure
from repro.lang.pretty import pp_formula
from repro.vc.wp import wp, wp_proc

VARS = ["x", "y", "z"]


class TestTextbookCases:
    def test_skip(self):
        post = RelExpr("==", VarExpr("x"), IntLit(0))
        assert wp(SkipStmt(), post) == post

    def test_assign_substitutes(self):
        # wp(x := x + 1, x == 1) = x + 1 == 1
        s = AssignStmt("x", BinExpr("+", VarExpr("x"), IntLit(1)))
        post = RelExpr("==", VarExpr("x"), IntLit(1))
        out = wp(s, post)
        assert pp_formula(out) == "(x + 1) == 1"

    def test_assert_conjoins(self):
        s = AssertStmt(RelExpr(">", VarExpr("x"), IntLit(0)))
        out = wp(s, BoolLit(True))
        assert pp_formula(out) == "x > 0"

    def test_assume_implies(self):
        s = AssumeStmt(RelExpr(">", VarExpr("x"), IntLit(0)))
        post = RelExpr("==", VarExpr("x"), IntLit(5))
        out = wp(s, post)
        assert "==>" in pp_formula(out)

    def test_seq_composes_right_to_left(self):
        # wp(x := 1; assert x == 1, true) = 1 == 1 ... simplified at eval
        body = seq(AssignStmt("x", IntLit(1)),
                   AssertStmt(RelExpr("==", VarExpr("x"), IntLit(1))))
        out = wp(body, BoolLit(True))
        interp = Interpreter()
        assert interp.eval_formula(out, {"x": 99}) is True

    def test_nondet_if_conjoins_branches(self):
        s = IfStmt(None,
                   AssertStmt(RelExpr(">", VarExpr("x"), IntLit(0))),
                   AssertStmt(RelExpr("<", VarExpr("x"), IntLit(0))))
        out = wp(s, BoolLit(True))
        interp = Interpreter()
        # both branches must hold: impossible for any x
        for v in (-1, 0, 1):
            assert interp.eval_formula(out, {"x": v}) is False

    def test_map_write_substitution_through_wp(self):
        from repro.lang.parser import parse_program
        prog = parse_program("""
            var Freed: [int]int;
            procedure Foo(c: int) modifies Freed;
            {
              assert Freed[c] == 0;
              Freed[c] := 1;
              A: assert Freed[c] == 1;
            }
        """)
        out = wp_proc(prog.proc("Foo").body)
        from repro.lang.interp import MapValue
        interp = Interpreter()
        assert interp.eval_formula(out, {"Freed": MapValue({}), "c": 3}) is True
        assert interp.eval_formula(out, {"Freed": MapValue({3: 1}), "c": 3}) is False


# ----------------------------------------------------------------------
# the definitional property, via random deterministic programs
# ----------------------------------------------------------------------


@st.composite
def det_programs(draw):
    depth = draw(st.integers(0, 3))

    def expr(d):
        kind = draw(st.integers(0, 2 if d == 0 else 3))
        if kind == 0:
            return IntLit(draw(st.integers(-3, 3)))
        if kind in (1, 2):
            return VarExpr(draw(st.sampled_from(VARS)))
        op = draw(st.sampled_from(["+", "-", "*"]))
        return BinExpr(op, expr(d - 1), expr(d - 1))

    def cond():
        op = draw(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]))
        return RelExpr(op, expr(1), expr(1))

    def stmt(d):
        kind = draw(st.integers(0, 3 if d == 0 else 5))
        if kind == 0:
            return AssignStmt(draw(st.sampled_from(VARS)), expr(1))
        if kind == 1:
            return AssertStmt(cond())
        if kind == 2:
            return AssumeStmt(cond())
        if kind == 3:
            return SkipStmt()
        if kind == 4:
            return IfStmt(cond(), stmt(d - 1), stmt(d - 1))
        return seq(stmt(d - 1), stmt(d - 1))

    return stmt(depth)


class TestDefinitionalProperty:
    @given(det_programs(),
           st.tuples(st.integers(-3, 3), st.integers(-3, 3),
                     st.integers(-3, 3)))
    @settings(max_examples=300, deadline=None)
    def test_wp_matches_interpreter(self, body, values):
        state = dict(zip(VARS, values))
        formula = wp(body, BoolLit(True))
        interp = Interpreter()
        in_wp = interp.eval_formula(formula, dict(state))
        result = interp.run(body, dict(state))
        failed = result.status == ExecStatus.ASSERT_FAIL
        assert in_wp == (not failed)
