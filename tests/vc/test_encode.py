"""Path-encoding tests: reach/fail literals against hand analyses and
against the reference interpreter on random programs.

The central properties:

* *fail completeness/soundness* (deterministic programs): assertion ``a``
  fails from pinned inputs iff the first-failure query is SAT under those
  pins;
* *witness soundness* (nondeterministic programs): any behaviour the
  interpreter exhibits under some chooser must be SAT in the encoding.
"""

from hypothesis import given, settings, strategies as st

from repro.lang.ast import (AssertStmt, AssignStmt, AssumeStmt, BinExpr,
                            HavocStmt, IfStmt, IntLit, Procedure, Program,
                            RelExpr, SeqStmt, SkipStmt, Type, VarExpr, seq)
from repro.lang.interp import ExecStatus, Interpreter, initial_state
from repro.lang.parser import parse_program
from repro.lang.transform import instrument, prepare_procedure
from repro.lang.typecheck import typecheck
from repro.vc.encode import EncodedProcedure

VARS = ["x", "y", "z"]


def encode_proc(src: str, name: str | None = None):
    prog = typecheck(parse_program(src))
    pname = name or next(n for n, p in prog.procedures.items()
                         if p.body is not None)
    proc = prepare_procedure(prog, prog.proc(pname))
    return prog, proc, EncodedProcedure(prog, proc)


def pin_assumptions(enc, values: dict) -> list[int]:
    """Assumption literals forcing entry variables to concrete values."""
    out = []
    f = enc.factory
    for name, value in values.items():
        term = enc.entry_env[name]
        out.append(enc.solver.lit_for(f.eq(term, f.intconst(value))))
    return out


class TestFailQueries:
    def test_unconditional_failure(self):
        _, _, enc = encode_proc(
            "procedure P(x: int) { A: assert x > 0; }")
        ev = enc.assert_events[0]
        assert enc.solver.check(enc.fail_assumptions(ev.aid)) == "sat"
        pins = pin_assumptions(enc, {"x": 5})
        assert enc.solver.check(pins + enc.fail_assumptions(ev.aid)) == "unsat"
        pins = pin_assumptions(enc, {"x": 0})
        assert enc.solver.check(pins + enc.fail_assumptions(ev.aid)) == "sat"

    def test_first_failure_masks_later(self):
        _, _, enc = encode_proc("""
            procedure P(x: int) {
              A1: assert x > 0;
              A2: assert x > 0;
            }
        """)
        a1, a2 = enc.assert_events
        # A2 can never be the *first* failure: any input failing it fails A1
        assert enc.solver.check(enc.fail_assumptions(a1.aid)) == "sat"
        assert enc.solver.check(enc.fail_assumptions(a2.aid)) == "unsat"

    def test_figure1_footnote_a6_unreachable_as_failure(self):
        # Under !Freed[c] && !Freed[buf] && c != buf, every input that
        # fails A6 also fails A5, so A6 is never reported (footnote 1).
        prog, proc, enc = encode_proc("""
            var Freed: [int]int;
            procedure P(c: int, buf: int) modifies Freed;
            {
              Freed[c] := 1;
              Freed[buf] := 1;
              A5: assert Freed[c] == 0;
              A6: assert Freed[buf] == 0;
            }
        """)
        a5, a6 = enc.assert_events
        assert enc.solver.check(enc.fail_assumptions(a5.aid)) == "sat"
        assert enc.solver.check(enc.fail_assumptions(a6.aid)) == "unsat"

    def test_guarded_assert_never_fails(self):
        _, _, enc = encode_proc("""
            procedure P(x: int) {
              if (x != 0) { A: assert x != 0; }
            }
        """)
        ev = enc.assert_events[0]
        assert enc.solver.check(enc.fail_assumptions(ev.aid)) == "unsat"

    def test_assume_blocks_failure(self):
        _, _, enc = encode_proc("""
            procedure P(x: int) {
              assume x > 0;
              A: assert x > 0;
            }
        """)
        ev = enc.assert_events[0]
        assert enc.solver.check(enc.fail_assumptions(ev.aid)) == "unsat"


class TestReachQueries:
    def test_branch_reachability(self):
        _, _, enc = encode_proc("""
            procedure P(x: int) {
              if (x == 0) { skip; } else { skip; }
            }
        """)
        for ev in enc.loc_events:
            assert enc.solver.check(enc.reach_assumptions(ev.loc_id)) == "sat"
        pins = pin_assumptions(enc, {"x": 0})
        then_loc = next(e for e in enc.loc_events if e.describes == "then")
        els_loc = next(e for e in enc.loc_events if e.describes == "else")
        assert enc.solver.check(
            pins + enc.reach_assumptions(then_loc.loc_id)) == "sat"
        assert enc.solver.check(
            pins + enc.reach_assumptions(els_loc.loc_id)) == "unsat"

    def test_contradictory_assume_kills_rest(self):
        _, _, enc = encode_proc("""
            procedure P(x: int) {
              assume x > 0;
              assume x < 0;
              skip;
            }
        """)
        last = enc.loc_events[-1]
        assert enc.solver.check(enc.reach_assumptions(last.loc_id)) == "unsat"

    def test_reach_through_failures_semantics(self):
        # default: an earlier failing assert does NOT block reachability
        _, _, enc = encode_proc("""
            procedure P(x: int) {
              A: assert x != 0;
              if (x == 0) { skip; } else { skip; }
            }
        """)
        then_loc = next(e for e in enc.loc_events if e.describes == "then")
        assert enc.solver.check(
            enc.reach_assumptions(then_loc.loc_id)) == "sat"
        # strict failure-terminates semantics: it does block
        assert enc.solver.check(
            enc.reach_assumptions(then_loc.loc_id,
                                  through_failures=False)) == "unsat"

    def test_nondet_branch_both_reachable(self):
        _, _, enc = encode_proc("""
            procedure P(x: int) {
              if (*) { skip; } else { skip; }
            }
        """)
        pins = pin_assumptions(enc, {"x": 0})
        for ev in enc.loc_events:
            assert enc.solver.check(
                pins + enc.reach_assumptions(ev.loc_id)) == "sat"


class TestSpecIndicators:
    def test_spec_restricts_failures(self):
        prog = typecheck(parse_program(
            "procedure P(x: int) { A: assert x > 0; }"))
        proc = prepare_procedure(prog, prog.proc("P"))
        enc = EncodedProcedure(prog, proc)
        from repro.lang.ast import RelExpr, VarExpr, IntLit
        spec = RelExpr(">", VarExpr("x"), IntLit(0))
        ind = enc.spec_indicator(spec)
        ev = enc.assert_events[0]
        assert enc.solver.check([ind] + enc.fail_assumptions(ev.aid)) == "unsat"
        assert enc.solver.check(enc.fail_assumptions(ev.aid)) == "sat"

    def test_spec_indicator_cached(self):
        _, _, enc = encode_proc("procedure P(x: int) { A: assert x > 0; }")
        spec = RelExpr(">", VarExpr("x"), IntLit(0))
        assert enc.spec_indicator(spec) == enc.spec_indicator(spec)


class TestVcLit:
    def test_vc_sat_iff_some_failure(self):
        _, _, enc = encode_proc("""
            procedure P(x: int) {
              assume x > 0;
              A: assert x > 0;
            }
        """)
        assert enc.solver.check([enc.vc_lit()]) == "unsat"
        _, _, enc2 = encode_proc("procedure P(x: int) { A: assert x > 0; }")
        assert enc2.solver.check([enc2.vc_lit()]) == "sat"

    def test_vc_lit_stable(self):
        _, _, enc = encode_proc("procedure P(x: int) { A: assert x > 0; }")
        assert enc.vc_lit() == enc.vc_lit()


# ----------------------------------------------------------------------
# random cross-checks against the interpreter
# ----------------------------------------------------------------------


@st.composite
def programs(draw, deterministic: bool):
    depth = draw(st.integers(0, 3))
    label_counter = [0]

    def expr(d):
        kind = draw(st.integers(0, 2 if d == 0 else 3))
        if kind == 0:
            return IntLit(draw(st.integers(-2, 2)))
        if kind in (1, 2):
            return VarExpr(draw(st.sampled_from(VARS)))
        op = draw(st.sampled_from(["+", "-"]))
        return BinExpr(op, expr(d - 1), expr(d - 1))

    def cond():
        op = draw(st.sampled_from(["==", "!=", "<", "<="]))
        return RelExpr(op, expr(1), expr(1))

    def stmt(d):
        hi = 5 if deterministic else 6
        kind = draw(st.integers(0, 3 if d == 0 else hi))
        if kind == 0:
            return AssignStmt(draw(st.sampled_from(VARS)), expr(1))
        if kind == 1:
            label_counter[0] += 1
            return AssertStmt(cond(), label=f"A{label_counter[0]}")
        if kind == 2:
            return AssumeStmt(cond())
        if kind == 3:
            return SkipStmt()
        if kind == 4:
            return seq(stmt(d - 1), stmt(d - 1))
        if kind == 5:
            nondet = (not deterministic) and draw(st.booleans())
            return IfStmt(None if nondet else cond(),
                          stmt(d - 1), stmt(d - 1))
        return HavocStmt((draw(st.sampled_from(VARS)),))

    body = stmt(depth)
    if deterministic:
        body = seq(body)
    return instrument(body)


def make_enc(body):
    var_types = {v: Type.INT for v in VARS}
    proc = Procedure(name="P", params=tuple(VARS), returns=(),
                     var_types=var_types, body=body)
    prog = Program(procedures={"P": proc})
    return EncodedProcedure(prog, proc)


class TestAgainstInterpreter:
    @given(programs(deterministic=True),
           st.tuples(st.integers(-2, 2), st.integers(-2, 2),
                     st.integers(-2, 2)))
    @settings(max_examples=200, deadline=None)
    def test_deterministic_fail_iff(self, body, values):
        enc = make_enc(body)
        state = dict(zip(VARS, values))
        result = Interpreter().run(body, dict(state))
        pins = pin_assumptions(enc, state)
        failed_label = (result.failed_assert.label
                        if result.status == ExecStatus.ASSERT_FAIL else None)
        for ev in enc.assert_events:
            expected = "sat" if ev.label == failed_label else "unsat"
            got = enc.solver.check(pins + enc.fail_assumptions(ev.aid))
            assert got == expected, (ev.label, expected, got)

    @given(programs(deterministic=True),
           st.tuples(st.integers(-2, 2), st.integers(-2, 2),
                     st.integers(-2, 2)))
    @settings(max_examples=150, deadline=None)
    def test_deterministic_reach_iff(self, body, values):
        enc = make_enc(body)
        state = dict(zip(VARS, values))
        result = Interpreter().run(body, dict(state))
        pins = pin_assumptions(enc, state)
        # default reach semantics ignores assertion failures; rerun the
        # interpreter with asserts treated as skips for the oracle
        from repro.lang import ast as A

        def strip_asserts(s):
            if isinstance(s, A.AssertStmt):
                return A.SkipStmt()
            if isinstance(s, A.SeqStmt):
                return A.seq(*(strip_asserts(c) for c in s.stmts))
            if isinstance(s, A.IfStmt):
                return A.IfStmt(s.cond, strip_asserts(s.then),
                                strip_asserts(s.els))
            return s

        result2 = Interpreter().run(strip_asserts(body), dict(state))
        for ev in enc.loc_events:
            expected = "sat" if ev.loc_id in result2.visited_locations \
                else "unsat"
            got = enc.solver.check(pins + enc.reach_assumptions(ev.loc_id))
            assert got == expected, (ev.loc_id, expected, got)

    @given(programs(deterministic=False),
           st.tuples(st.integers(-2, 2), st.integers(-2, 2),
                     st.integers(-2, 2)),
           st.lists(st.integers(-2, 2), min_size=8, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_nondet_witness_soundness(self, body, values, choices):
        """Whatever the interpreter does under some chooser must be SAT."""
        enc = make_enc(body)
        state = dict(zip(VARS, values))
        it = iter(choices + [0] * 64)
        result = Interpreter(chooser=lambda: next(it)).run(body, dict(state))
        pins = pin_assumptions(enc, state)
        if result.status == ExecStatus.ASSERT_FAIL:
            aid = result.failed_assert.aid
            assert enc.solver.check(pins + enc.fail_assumptions(aid)) == "sat"
