"""Passification + compact VC tests, cross-checked against the other two
semantics implementations (interpreter, path encoding)."""

from hypothesis import given, settings, strategies as st

from repro.lang.ast import (AssertStmt, AssumeStmt, Procedure, Program,
                            RelExpr, SeqStmt, Type, VarExpr, walk_stmts)
from repro.lang.parser import parse_program
from repro.lang.transform import prepare_procedure
from repro.lang.typecheck import typecheck
from repro.vc.encode import EncodedProcedure
from repro.vc.passify import (check_procedure_compact, compact_wp,
                              passify_procedure, vc_formula, versioned)

from .test_encode import VARS, make_enc, programs


def prep(src: str, name: str | None = None):
    prog = typecheck(parse_program(src))
    pname = name or next(n for n, p in prog.procedures.items()
                         if p.body is not None)
    return prog, prepare_procedure(prog, prog.proc(pname))


class TestPassify:
    def test_assignment_becomes_assume(self):
        prog, proc = prep("procedure P(x: int) { x := x + 1; }")
        passive = passify_procedure(prog, proc)
        assumes = [s for s in walk_stmts(passive.body)
                   if isinstance(s, AssumeStmt)]
        assert len(assumes) == 1
        eq = assumes[0].formula
        assert isinstance(eq, RelExpr) and eq.op == "=="
        assert eq.lhs == VarExpr("x#1")

    def test_versions_thread_through_sequence(self):
        prog, proc = prep("procedure P(x: int) { x := x + 1; x := x + 1; "
                          "assert x > 1; }")
        passive = passify_procedure(prog, proc)
        names = {s.formula.lhs.name for s in walk_stmts(passive.body)
                 if isinstance(s, AssumeStmt)}
        assert names == {"x#1", "x#2"}
        asserts = [s for s in walk_stmts(passive.body)
                   if isinstance(s, AssertStmt)]
        assert "x#2" in repr(asserts[0].formula)

    def test_branch_join_synchronizes(self):
        prog, proc = prep("""
            procedure P(x: int, y: int) {
              if (y == 0) { x := 1; } else { skip; }
              assert x > 0;
            }
        """)
        passive = passify_procedure(prog, proc)
        # the else branch must sync x to the joined version
        text = repr(passive.body)
        assert "x#1" in text
        # and the final assert reads the joined version
        asserts = [s for s in walk_stmts(passive.body)
                   if isinstance(s, AssertStmt)]
        assert "x#1" in repr(asserts[-1].formula)

    def test_havoc_bumps_version_without_constraint(self):
        prog, proc = prep("procedure P(x: int) { havoc x; assert x == 0; }")
        passive = passify_procedure(prog, proc)
        assumes = [s for s in walk_stmts(passive.body)
                   if isinstance(s, AssumeStmt)]
        assert not assumes  # havoc leaves the new version unconstrained

    def test_versioned_naming(self):
        assert versioned("x", 0) == "x"
        assert versioned("x", 3) == "x#3"


class TestCompactVcKnownCases:
    def test_verified_procedure(self):
        prog, proc = prep("""
            procedure P(x: int) {
              assume x > 0;
              assert x > 0;
            }
        """)
        assert check_procedure_compact(prog, proc) is True

    def test_failing_procedure(self):
        prog, proc = prep("procedure P(x: int) { assert x > 0; }")
        assert check_procedure_compact(prog, proc) is False

    def test_map_updates(self):
        prog, proc = prep("""
            var M: [int]int;
            procedure P(i: int) modifies M;
            {
              M[i] := 1;
              assert M[i] == 1;
            }
        """)
        assert check_procedure_compact(prog, proc) is True

    def test_aliasing_failure(self):
        prog, proc = prep("""
            var M: [int]int;
            procedure P(i: int, j: int) modifies M;
            {
              M[i] := 1;
              assert M[j] == 1;
            }
        """)
        assert check_procedure_compact(prog, proc) is False

    def test_nondet_branch_both_checked(self):
        prog, proc = prep("""
            procedure P(x: int) {
              assume x == 1;
              if (*) { assert x == 1; } else { assert x >= 1; }
            }
        """)
        assert check_procedure_compact(prog, proc) is True

    def test_vc_is_linear_not_exponential(self):
        # a chain of branches: the compact VC must stay small
        branches = "\n".join(
            f"if (x == {i}) {{ x := x + 1; }} else {{ x := x + 2; }}"
            for i in range(12))
        prog, proc = prep(f"procedure P(x: int) {{ {branches} assert x >= x; }}")
        passive = passify_procedure(prog, proc)
        fm = vc_formula(passive)
        # count DAG nodes (continuations are shared objects): must be far
        # below the 2^12 path count
        seen = set()
        stack = [fm]
        while stack and len(seen) < 100000:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            for attr in ("args", "lhs", "rhs", "arg"):
                sub = getattr(node, attr, None)
                if sub is None:
                    continue
                stack.extend(sub if isinstance(sub, tuple) else [sub])
        assert len(seen) < 5000


class TestAgreementWithPathEncoding:
    @given(programs(deterministic=False))
    @settings(max_examples=120, deadline=None)
    def test_verified_iff_no_conservative_warnings(self, body):
        """The compact-VC backend and the incremental path encoding must
        agree on whether any assertion can fail."""
        enc = make_enc(body)
        any_fail = any(
            enc.solver.check(enc.fail_assumptions(ev.aid)) == "sat"
            for ev in enc.assert_events)
        var_types = {v: Type.INT for v in VARS}
        proc = Procedure(name="P", params=tuple(VARS), returns=(),
                         var_types=var_types, body=body)
        prog = Program(procedures={"P": proc})
        verified = check_procedure_compact(prog, proc)
        assert verified == (not any_fail)
