"""Fleet router tests, all in-process (:class:`FleetThread`): shard
routing, cross-client twin coalescing at one shard, the hot tier and
the ``peek`` verb, report parity with batch, and thread-level failover
(replica drained out from under the router).  Process-death failover
lives in ``test_fleet_failover.py``."""

import time
from dataclasses import fields

import pytest

from repro.core import CONC, analyze_program, conservative_program
from repro.core.tasks import AnalysisTask, task_keys
from repro.lang import parse_program, typecheck
from repro.serve import FleetThread, ServeClient, ServeError

FIG1_BPL = """
var Freed: [int]int;
procedure Foo(c: int, buf: int, cmd: int) modifies Freed;
{
  if (*) {
    A1: assert Freed[c] == 0;  Freed[c] := 1;
    A2: assert Freed[buf] == 0; Freed[buf] := 1;
    return;
  }
  if (cmd == 0) {
    if (*) {
      A3: assert Freed[c] == 0;  Freed[c] := 1;
      A4: assert Freed[buf] == 0; Freed[buf] := 1;
    }
  }
  A5: assert Freed[c] == 0;  Freed[c] := 1;
  A6: assert Freed[buf] == 0; Freed[buf] := 1;
}
"""

MANY_PROCS_BPL = "\n".join(f"""
procedure p{i}(x: int) returns (r: int)
  ensures r >= x;
{{
  r := x + {i + 1};
}}""" for i in range(6))

_VOLATILE = {"seconds", "phases", "budget_remaining", "solver_stats",
             "queries", "cache_hits", "queries_saved"}


def _stable(report):
    return [{f.name: getattr(r, f.name) for f in fields(r)
             if f.name not in _VOLATILE} for r in report.reports]


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    sock = str(tmp_path_factory.mktemp("fleet") / "router.sock")
    with FleetThread(sock, replicas=2, pool_size=1, queue_limit=8) as ft:
        yield ft


@pytest.fixture()
def client(fleet):
    with fleet.client() as c:
        yield c


def _replica_counter(fleet, name):
    return sum(s.server.metrics.snapshot()["counters"].get(name, 0)
               for s in fleet.servers)


class TestRouting:
    def test_ping_identifies_router(self, client):
        resp = client.ping()
        assert resp["pong"] is True
        assert resp["role"] == "router"
        assert resp["replicas"] == 2

    def test_analyze_matches_batch(self, client):
        served = client.analyze(FIG1_BPL)
        program = typecheck(parse_program(FIG1_BPL))
        batch = analyze_program(program, config=CONC)
        assert _stable(served) == _stable(batch)

    def test_cons_matches_batch(self, client):
        served = client.conservative(FIG1_BPL)
        program = typecheck(parse_program(FIG1_BPL))
        warnings, timeouts = conservative_program(program)
        assert served["warnings"] == warnings
        assert served["timeouts"] == timeouts
        assert served["failures"] == {}

    def test_report_order_follows_submission(self, client):
        served = client.analyze(MANY_PROCS_BPL)
        assert [r.proc_name for r in served.reports] == \
            [f"p{i}" for i in range(6)]

    def test_work_spreads_across_shards(self, fleet, client):
        # Six distinct procedures should not all hash to one shard
        # (checked via the submit ack's shard count).
        acc = client.submit(MANY_PROCS_BPL)
        assert acc["shards"] == 2
        client.result(acc["id"])

    def test_status_and_result_parity(self, client):
        acc = client.submit(MANY_PROCS_BPL)
        st = client.status(acc["id"])
        assert st["state"] in ("queued", "running", "done")
        assert st["total"] == 6
        res = client.result(acc["id"])
        assert res["failures"] == 0
        assert client.status(acc["id"])["state"] == "done"

    def test_unknown_request_and_bad_submit(self, client):
        with pytest.raises(ServeError) as exc:
            client.status("nonesuch")
        assert exc.value.code == "unknown_request"
        with pytest.raises(ServeError) as exc:
            client.submit("procedure oops(   <-- not boogie")
        assert exc.value.code == "bad_request"

    def test_topology_verb(self, fleet, client):
        topo = client.request("topology")
        assert topo["role"] == "router"
        assert sorted(topo["alive"]) == sorted(fleet.replica_addrs)
        assert topo["dead"] == {}

    def test_metrics_aggregates_shards(self, fleet, client):
        m = client.metrics()
        assert m["role"] == "router"
        assert set(m["shards"]) == set(fleet.replica_addrs)
        for snap in m["shards"].values():
            assert snap is not None and "counters" in snap

    def test_in_flight_requests_survive_gc(self, client):
        # Regression: group/flight coroutines are fire-and-forget, and
        # the event loop only keeps weak references to tasks — without
        # a strong reference a GC pass mid-await destroys the pending
        # task ("Task was destroyed but it is pending!") and its
        # request never completes.  Pile up concurrent requests, force
        # collection while they are in flight, and demand every one
        # still finishes.
        import gc
        srcs = [f"procedure G{i}(x: int) {{ A1: assert x + {i} > x; }}"
                for i in range(8)]
        ids = [client.submit(src)["id"] for src in srcs]
        gc.collect()
        for rid in ids:
            assert client.result(rid)["failures"] == 0


class TestCoalescingAndHotTier:
    def test_cross_client_twins_coalesce_at_one_shard(self, fleet):
        # Park every replica pool so the first submission cannot finish,
        # then submit the same never-seen program from a second client:
        # its tasks must ride the first client's in-flight computations
        # (same shard by consistent hashing), not enqueue new ones.
        # Content addresses ignore procedure names, so freshness needs
        # a never-seen *body* (the changed constant), not just a rename.
        src = FIG1_BPL.replace("Foo", "TwinProbe").replace(
            "cmd == 0", "cmd == 41")
        blockers = [s.server.pool.submit(
            AnalysisTask(kind="sleep", payload=0.5))
            for s in fleet.servers]
        before = _replica_counter(fleet, "coalesced_tasks")
        with fleet.client() as c1, fleet.client() as c2:
            acc1 = c1.submit(src)
            acc2 = c2.submit(src)
            for b in blockers:
                b.result(timeout=60)
            r1 = c1.result(acc1["id"])
            r2 = c2.result(acc2["id"])
        assert _replica_counter(fleet, "coalesced_tasks") == before + 1
        assert r1["report"]["reports"] == r2["report"]["reports"]

    def test_repeat_request_served_from_hot_tier(self, fleet):
        src = FIG1_BPL.replace("Foo", "HotProbe").replace(
            "cmd == 0", "cmd == 42")
        with fleet.client() as c:
            c.analyze(src)
            before = _replica_counter(fleet, "hot_hits")
            rep = c.analyze(src)
        assert _replica_counter(fleet, "hot_hits") == before + 1
        assert not rep.reports[0].failed

    def test_peek_verb_answers_from_hot_tier(self, fleet):
        src = FIG1_BPL.replace("Foo", "PeekProbe").replace(
            "cmd == 0", "cmd == 43")
        with fleet.client() as c:
            c.analyze(src)
        program = typecheck(parse_program(src))
        task = AnalysisTask(kind="analyze", proc_name="PeekProbe",
                            program=program)
        key, cache_key = task_keys(task)
        found = []
        for shard in fleet.replica_addrs:
            with ServeClient(shard) as sc:
                resp = sc.request("peek", key=key, cache_key=cache_key)
                found.append(resp["found"])
        # exactly the owning shard holds it hot
        assert found.count(True) == 1
        winner = fleet.replica_addrs[found.index(True)]
        assert winner == fleet.router.router.ring.owner(key)

    def test_peek_miss_is_clean(self, fleet):
        with ServeClient(fleet.replica_addrs[0]) as sc:
            resp = sc.request("peek", key="no-such-key", cache_key=None)
        assert resp["found"] is False


class TestThreadFailover:
    """Replica loss while the fleet is up: drain one ServerThread out
    from under the router, then keep serving."""

    @pytest.fixture(scope="class")
    def lossy_fleet(self, tmp_path_factory):
        sock = str(tmp_path_factory.mktemp("lossy") / "router.sock")
        ft = FleetThread(sock, replicas=2, pool_size=1, queue_limit=8)
        ft.start()
        yield ft
        # only the survivor is still running; router.stop is idempotent
        ft.router.stop()
        for server in ft.servers:
            server.stop()

    def test_submission_survives_replica_drain(self, lossy_fleet):
        with lossy_fleet.client() as c:
            full = c.analyze(MANY_PROCS_BPL)
            assert not any(r.failed for r in full.reports)
            # Kill the shard that provably owns p0's keyspace, so the
            # next submission must hit the dead replica and fail over.
            program = typecheck(parse_program(MANY_PROCS_BPL))
            key, _ = task_keys(AnalysisTask(
                kind="analyze", proc_name="p0", program=program))
            router = lossy_fleet.router.router
            victim = router.ring.owner(key)
            victim_idx = lossy_fleet.replica_addrs.index(victim)
            lossy_fleet.servers[victim_idx].stop()  # drain + socket gone
            after = c.analyze(MANY_PROCS_BPL)
        assert _stable(after) == _stable(full)
        assert len(router.ring) == 1
        assert victim in router._dead
        counters = router.metrics.snapshot()["counters"]
        assert counters.get("replica_failures", 0) == 1
        assert counters.get("failover_resubmits", 0) >= 1

    def test_no_replicas_left_reports_structured_failures(self,
                                                          lossy_fleet):
        for server in lossy_fleet.servers:  # kill the survivor too
            server.stop()
        with lossy_fleet.client() as c:
            rep = c.analyze(MANY_PROCS_BPL)
            assert all(r.failed for r in rep.reports)
            assert all(r.failure["type"] == "replica_lost"
                       for r in rep.reports)
            # once the ring is empty, admission refuses outright
            with pytest.raises(ServeError) as exc:
                c.submit(MANY_PROCS_BPL)
            assert exc.value.code == "no_replicas"
