"""Serving with ``self_check`` on must be invisible in the results *and*
in the certificates: the reports a warm daemon produces for a fig5
suite are identical — modulo wall-clock fields — to the batch sweep's,
every answer is certificate-checked, and no theory lemma is ever taken
on trust."""

from dataclasses import fields

import pytest

from repro.bench import compile_suite, make_suite
from repro.core import CONC, analyze_program
from repro.core.deadfail import clear_baseline_cache
from repro.serve import ServeClient, ServerThread

# wall-clock / machine-local fields excluded from the equality check
_VOLATILE = {"seconds", "phases", "budget_remaining", "solver_stats",
             "queries", "cache_hits", "queries_saved", "certificates"}


def _stable(report):
    return [{f.name: getattr(r, f.name) for f in fields(r)
             if f.name not in _VOLATILE} for r in report.reports]


def _cert_totals(report):
    totals: dict = {}
    for r in report.reports:
        for k, v in r.certificates.items():
            if k == "check_wall":  # wall clock: present but not compared
                continue
            totals[k] = totals.get(k, 0) + v
    return totals


@pytest.fixture(scope="module")
def suite():
    return make_suite("moufilter", scale=0.5)


def test_served_selfcheck_matches_batch_and_trusts_nothing(tmp_path, suite):
    names = [f.name for f in suite.functions]
    program = compile_suite(suite)
    # The certificate-count comparison below assumes the batch side does
    # the same solver work as the daemon's freshly-spawned workers, so
    # drop any baseline memo earlier in-process tests warmed (fingerprints
    # are name-independent: another suite's name-twin filler procedure
    # seeds this suite's baselines).
    clear_baseline_cache()
    batch = analyze_program(program, config=CONC, proc_names=names,
                            self_check=True)

    sock = str(tmp_path / "s.sock")
    with ServerThread(sock, pool_size=2, queue_limit=32):
        with ServeClient(sock) as client:
            served = client.analyze(suite.c_source, lang="c", procs=names,
                                    self_check=True)

    assert _stable(served) == _stable(batch)

    batch_certs = _cert_totals(batch)
    served_certs = _cert_totals(served)
    assert served_certs == batch_certs
    # self-check actually took effect on both sides...
    assert batch_certs["sat_checked"] + batch_certs["unsat_checked"] > 0
    # ...and with checked_theory_lemmas on (the default) no certificate
    # anywhere in the fleet fell back to trusting a lemma
    assert batch_certs["lemmas_trusted"] == 0
    assert served_certs["lemmas_trusted"] == 0
