"""Failure-path tests for the persistent worker pool: crash recovery,
deadlines, drain.  Control tasks (echo/sleep/crash) keep these fast —
no solver work, just process plumbing."""

import os
import signal
import threading
import time

import pytest

from repro.core.tasks import AnalysisTask
from repro.serve.pool import PoolClosedError, WorkerPool


def _echo(payload="x"):
    return AnalysisTask(kind="echo", payload=payload)


def _sleep(seconds):
    return AnalysisTask(kind="sleep", payload=seconds)


@pytest.fixture()
def pool():
    p = WorkerPool(workers=1, max_retries=2, backoff_base=0.01)
    p.start(warm=False)
    yield p
    p.close()


class TestRoundTrip:
    def test_echo(self, pool):
        res = pool.submit(_echo({"n": 3})).result(timeout=30)
        assert res.failure is None
        assert res.value == {"n": 3}

    def test_results_in_submission_order_per_future(self, pool):
        futs = [pool.submit(_echo(i)) for i in range(5)]
        assert [f.result(timeout=30).value for f in futs] == list(range(5))


class TestCrashRecovery:
    def test_sigkill_mid_request_restarts_and_retries(self, pool):
        fut = pool.submit(_sleep(0.6))
        # Wait until the task is actually on the worker, then murder it.
        deadline = time.monotonic() + 10
        while pool.in_flight() == 0:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        time.sleep(0.1)
        (pid,) = pool.worker_pids()
        os.kill(pid, signal.SIGKILL)
        res = fut.result(timeout=30)
        assert res.failure is None, res.failure
        assert res.value == 0.6
        counters = pool.counters()
        assert counters["retries"] >= 1
        assert counters["restarts"] >= 1
        # The replacement worker is a different process and still works.
        assert pool.worker_pids() != [pid]
        assert pool.submit(_echo("after")).result(timeout=30).value == "after"

    def test_repeated_crashes_exhaust_retries(self, pool):
        res = pool.submit(AnalysisTask(kind="crash")).result(timeout=60)
        assert res.failure is not None
        assert res.failure["type"] == "worker_crash"
        assert "retries exhausted" in res.failure["message"]
        counters = pool.counters()
        assert counters["crash_failures"] == 1
        assert counters["retries"] == pool.max_retries
        # Pool is not wedged.
        assert pool.submit(_echo("ok")).result(timeout=30).value == "ok"


class TestDeadlines:
    def test_deadline_expires_while_queued(self, pool):
        blocker = pool.submit(_sleep(0.5))
        fut = pool.submit(_echo("late"), deadline_seconds=0.05)
        res = fut.result(timeout=30)
        assert res.failure is not None
        assert res.failure["type"] == "deadline"
        assert "before the task started" in res.failure["message"]
        assert blocker.result(timeout=30).failure is None
        assert pool.counters()["deadline_kills"] >= 1

    def test_deadline_expires_mid_run_without_poisoning_queue(self, pool):
        fut = pool.submit(_sleep(30.0), deadline_seconds=0.3)
        res = fut.result(timeout=30)
        assert res.failure is not None
        assert res.failure["type"] == "deadline"
        assert "mid-run" in res.failure["message"]
        assert pool.counters()["deadline_kills"] == 1
        # The killed worker's slot restarts and serves the next task.
        assert pool.submit(_echo("next")).result(timeout=30).value == "next"
        # A deadline kill is not a crash retry.
        assert pool.counters()["retries"] == 0


class TestPriorities:
    def test_lower_priority_number_dispatches_first(self, pool):
        # Park the single worker, then enqueue interleaved priorities:
        # rank 0 must dispatch before rank 5, FIFO within each rank.
        order = []
        blocker = pool.submit(_sleep(0.4))
        deadline = time.monotonic() + 10
        while pool.in_flight() == 0:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        futs = []
        for payload, prio in [("low1", 5), ("hi1", 0),
                              ("low2", 5), ("hi2", 0)]:
            fut = pool.submit(_echo(payload), priority=prio)
            fut.add_done_callback(
                lambda f: order.append(f.result().value))
            futs.append(fut)
        for fut in futs:
            fut.result(timeout=30)
        blocker.result(timeout=30)
        assert order == ["hi1", "hi2", "low1", "low2"]

    def test_default_priority_keeps_fifo(self, pool):
        blocker = pool.submit(_sleep(0.3))
        deadline = time.monotonic() + 10
        while pool.in_flight() == 0:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        order = []
        futs = [pool.submit(_echo(i)) for i in range(5)]
        for fut in futs:
            fut.add_done_callback(
                lambda f: order.append(f.result().value))
        for fut in futs:
            fut.result(timeout=30)
        blocker.result(timeout=30)
        assert order == list(range(5))


class TestDrainAndClose:
    def test_drain_completes_accepted_and_rejects_new(self):
        pool = WorkerPool(workers=2, backoff_base=0.01)
        pool.start(warm=False)
        try:
            futs = [pool.submit(_sleep(0.15)) for _ in range(4)]
            drained = []
            t = threading.Thread(
                target=lambda: drained.append(pool.drain(timeout=60)))
            t.start()
            time.sleep(0.05)
            with pytest.raises(PoolClosedError):
                pool.submit(_echo("too late"))
            t.join(60)
            assert drained == [True]
            for fut in futs:
                assert fut.result(timeout=1).failure is None
        finally:
            pool.close()

    def test_close_leaves_no_orphan_workers(self):
        pool = WorkerPool(workers=2)
        pool.start(warm=False)
        pids = pool.worker_pids()
        assert len(pids) == 2
        pool.close()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            alive = [p for p in pids if _alive(p)]
            if not alive:
                return
            time.sleep(0.05)
        assert not alive, f"orphaned workers: {alive}"

    def test_close_fails_queued_tasks_as_shutdown(self):
        pool = WorkerPool(workers=1, backoff_base=0.01)
        pool.start(warm=False)
        pool.submit(_sleep(0.3))
        queued = pool.submit(_echo("never"))
        pool.close()
        res = queued.result(timeout=10)
        assert res.failure is not None
        assert res.failure["type"] == "shutdown"


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
