"""Hash-ring unit tests: determinism, stability under membership
change (the consistent-hashing contract), and rough balance."""

import pytest

from repro.serve.hashring import HashRing

KEYS = [f"key-{i:04d}" for i in range(2000)]


def test_empty_ring_raises():
    ring = HashRing()
    with pytest.raises(LookupError):
        ring.owner("anything")


def test_owner_deterministic_across_instances():
    a = HashRing(["s0", "s1", "s2"])
    b = HashRing(["s2", "s0", "s1"])  # construction order must not matter
    assert [a.owner(k) for k in KEYS] == [b.owner(k) for k in KEYS]


def test_every_key_lands_on_a_member():
    ring = HashRing(["s0", "s1", "s2"])
    assert set(ring.owner(k) for k in KEYS) <= {"s0", "s1", "s2"}


def test_add_moves_only_keys_claimed_by_new_shard():
    ring = HashRing(["s0", "s1", "s2"])
    before = {k: ring.owner(k) for k in KEYS}
    ring.add("s3")
    moved = {k for k in KEYS if ring.owner(k) != before[k]}
    # Consistent hashing: every relocated key must be claimed by the
    # newcomer — no shuffling among the incumbents.
    assert all(ring.owner(k) == "s3" for k in moved)
    assert moved  # the newcomer takes a non-empty share


def test_remove_moves_only_the_dead_shards_keys():
    ring = HashRing(["s0", "s1", "s2"])
    before = {k: ring.owner(k) for k in KEYS}
    ring.remove("s1")
    for k in KEYS:
        if before[k] == "s1":
            assert ring.owner(k) in ("s0", "s2")  # re-homed to survivors
        else:
            assert ring.owner(k) == before[k]  # untouched


def test_add_then_remove_round_trips():
    ring = HashRing(["s0", "s1"])
    before = {k: ring.owner(k) for k in KEYS}
    ring.add("s2")
    ring.remove("s2")
    assert {k: ring.owner(k) for k in KEYS} == before


def test_membership_ops_idempotent():
    ring = HashRing(["s0", "s1"])
    ring.add("s0")
    assert len(ring) == 2
    ring.remove("sX")  # not a member: no-op
    ring.remove("s1")
    ring.remove("s1")
    assert ring.shards() == ["s0"]


def test_distribution_roughly_balanced():
    shards = [f"s{i}" for i in range(4)]
    ring = HashRing(shards)
    counts = {s: 0 for s in shards}
    for k in KEYS:
        counts[ring.owner(k)] += 1
    # 64 vnodes per shard gives a coarse balance; assert no shard is
    # starved or hoards a majority (expected share is 25%).
    for s in shards:
        assert 0.05 * len(KEYS) <= counts[s] <= 0.60 * len(KEYS), counts


def test_owners_walks_distinct_shards():
    ring = HashRing(["s0", "s1", "s2"])
    for k in KEYS[:50]:
        succ = ring.owners(k, 3)
        assert len(succ) == 3
        assert len(set(succ)) == 3
        assert succ[0] == ring.owner(k)
