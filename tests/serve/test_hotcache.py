"""Hot-tier unit tests: byte-bounded LRU behavior and the
TaskResult <-> record codecs."""

import json

import pytest

from repro.core.analysis import ProcedureReport
from repro.core.tasks import TaskResult
from repro.serve.hotcache import (HotCache, record_from_cache_record,
                                  record_to_result, result_to_record)


def _sized_record(n_bytes: int, tag: str) -> dict:
    """A record whose compact-JSON size is exactly ``n_bytes``."""
    overhead = len(json.dumps({"pad": "", "tag": tag},
                              separators=(",", ":")))
    return {"pad": "x" * (n_bytes - overhead), "tag": tag}


class TestLRU:
    def test_get_put_roundtrip(self):
        hc = HotCache(max_bytes=1 << 20)
        assert hc.get("k") is None
        rec = {"kind": "cons", "proc": "p", "warnings": ["w"]}
        assert hc.put("k", rec)
        assert hc.get("k") == rec
        assert hc.stats()["hits"] == 1
        assert hc.stats()["misses"] == 1

    def test_bytes_never_exceed_budget(self):
        budget = 1000
        hc = HotCache(max_bytes=budget)
        for i in range(50):
            hc.put(f"k{i}", _sized_record(90, f"t{i}"))
            assert hc.bytes_used() <= budget
        assert hc.stats()["evictions"] > 0
        assert len(hc) < 50

    def test_evicts_least_recently_used(self):
        hc = HotCache(max_bytes=300)
        hc.put("a", _sized_record(100, "a"))
        hc.put("b", _sized_record(100, "b"))
        hc.put("c", _sized_record(100, "c"))
        hc.get("a")  # promote a; b becomes the LRU victim
        hc.put("d", _sized_record(100, "d"))
        assert hc.get("b", touch=False) is None
        assert hc.get("a", touch=False) is not None
        assert hc.get("c", touch=False) is not None
        assert hc.get("d", touch=False) is not None

    def test_peek_read_does_not_promote(self):
        hc = HotCache(max_bytes=200)
        hc.put("a", _sized_record(100, "a"))
        hc.put("b", _sized_record(100, "b"))
        hc.get("a", touch=False)  # a peek must leave "a" the LRU victim
        hc.put("c", _sized_record(100, "c"))
        assert hc.get("a", touch=False) is None
        assert hc.get("b", touch=False) is not None

    def test_oversize_record_rejected(self):
        hc = HotCache(max_bytes=100)
        assert not hc.put("big", _sized_record(500, "big"))
        assert len(hc) == 0
        assert hc.stats()["oversize"] == 1

    def test_restore_refreshes_size_and_recency(self):
        hc = HotCache(max_bytes=1000)
        hc.put("k", _sized_record(400, "v1"))
        hc.put("k", _sized_record(100, "v2"))
        assert len(hc) == 1
        assert hc.bytes_used() < 200
        assert hc.get("k")["tag"] == "v2"

    def test_zero_budget_forbidden(self):
        with pytest.raises(ValueError):
            HotCache(max_bytes=0)


class TestCodecs:
    def _report(self, **over):
        kw = dict(proc_name="p", config_name="Conc")
        kw.update(over)
        return ProcedureReport(**kw)

    def test_analyze_roundtrip(self):
        res = TaskResult(kind="analyze", proc_name="p",
                         report=self._report(warnings=["A1"]),
                         cache_stats={"hits": 3})
        rec = result_to_record(res)
        assert rec["kind"] == "analyze"
        back = record_to_result(rec)
        assert back.report == res.report
        # a hot hit did no disk-cache work: stats must not replay
        assert back.cache_stats is None

    def test_cons_roundtrip(self):
        res = TaskResult(kind="cons", proc_name="p",
                         cons_warnings=["w1", "w2"])
        back = record_to_result(result_to_record(res))
        assert back.cons_warnings == ["w1", "w2"]
        assert back.cons_timed_out is False

    def test_failures_and_timeouts_never_cached(self):
        failed = TaskResult(kind="analyze", proc_name="p",
                            failure={"type": "Boom", "message": ""})
        assert result_to_record(failed) is None
        timed = TaskResult(kind="analyze", proc_name="p",
                           report=self._report(timed_out=True))
        assert result_to_record(timed) is None
        cons_to = TaskResult(kind="cons", proc_name="p",
                             cons_warnings=[], cons_timed_out=True)
        assert result_to_record(cons_to) is None
        control = TaskResult(kind="echo", proc_name="p", value=1)
        assert result_to_record(control) is None

    def test_unknown_report_field_raises(self):
        rec = result_to_record(TaskResult(
            kind="analyze", proc_name="p", report=self._report()))
        rec["report"]["from_the_future"] = 1
        with pytest.raises(ValueError):
            record_to_result(rec)

    def test_disk_record_conversion(self):
        from dataclasses import asdict
        disk = {"kind": "analysis", "proc": "p",
                "report": asdict(self._report(warnings=["A1"]))}
        hot = record_from_cache_record(disk)
        assert record_to_result(hot).report.warnings == ["A1"]
        disk_cons = {"kind": "cons", "proc": "p", "warnings": ["w"]}
        assert record_from_cache_record(disk_cons)["kind"] == "cons"
        assert record_from_cache_record({"kind": "junk"}) is None
