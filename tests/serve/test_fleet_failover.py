"""Whole-replica failover under real process death: subprocess
replicas, an in-process router, and SIGKILL — the replica vanishes
mid-request with no goodbye, the router re-hashes its keyspace over
the survivors, and the final report is indistinguishable from an
undisturbed run."""

import os
import subprocess
import time
from dataclasses import fields
from pathlib import Path

import pytest

from repro.core import CONC, analyze_program
from repro.core.tasks import AnalysisTask, task_keys
from repro.lang import parse_program, typecheck
from repro.serve import ServeClient
from repro.serve.fleet import replica_addresses, spawn_replica, wait_ready
from repro.serve.router import RouterThread

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")

_FIG1_BODY = """
procedure {name}(c: int, buf: int, cmd: int) modifies Freed;
{{
  if (*) {{
    A1: assert Freed[c] == 0;  Freed[c] := 1;
    A2: assert Freed[buf] == 0; Freed[buf] := 1;
    return;
  }}
  if (cmd == {salt}) {{
    if (*) {{
      A3: assert Freed[c] == 0;  Freed[c] := 1;
      A4: assert Freed[buf] == 0; Freed[buf] := 1;
    }}
  }}
  A5: assert Freed[c] == 0;  Freed[c] := 1;
  A6: assert Freed[buf] == 0; Freed[buf] := 1;
}}
"""


def _program_src(prefix: str, count: int) -> str:
    # Content addresses ignore procedure names, so every generated
    # procedure gets a *body* unique to (prefix, i) — otherwise all of
    # them would coalesce onto one flight / hot-tier entry and the
    # distribution and failover assumptions below would not hold.
    salt0 = sum(ord(ch) for ch in prefix) % 1000
    return "var Freed: [int]int;\n" + "".join(
        _FIG1_BODY.format(name=f"{prefix}{i}", salt=salt0 * 100 + i)
        for i in range(count))


_VOLATILE = {"seconds", "phases", "budget_remaining", "solver_stats",
             "queries", "cache_hits", "queries_saved"}


def _stable(report):
    return [{f.name: getattr(r, f.name) for f in fields(r)
             if f.name not in _VOLATILE} for r in report.reports]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    env.pop("REPRO_SERVE_SOCKET", None)
    env.pop("REPRO_CACHE_DIR", None)
    return env


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("failover")
    router_sock = str(tmp / "router.sock")
    shards = replica_addresses(router_sock, 2)
    procs = [spawn_replica(s, pool_size=1, peers=shards, env=_env())
             for s in shards]
    try:
        wait_ready(shards, timeout=180)
    except Exception:
        for p in procs:
            p.kill()
        raise
    router = RouterThread(router_sock, shards).start()
    yield router, procs, shards, router_sock
    router.stop()
    for p in procs:
        if p.poll() is None:
            p.terminate()
    for p in procs:
        try:
            p.wait(60)
        except subprocess.TimeoutExpired:
            p.kill()


def test_sanity_analyze_through_subprocess_fleet(fleet):
    _, _, _, router_sock = fleet
    src = _program_src("Warm", 1)
    with ServeClient(router_sock) as c:
        served = c.analyze(src)
    batch = analyze_program(typecheck(parse_program(src)), config=CONC)
    assert _stable(served) == _stable(batch)


def test_sigkill_replica_mid_request_failover(fleet):
    router_thread, procs, shards, router_sock = fleet
    ring = router_thread.router.ring

    # A cold program, and the shard that provably owns part of it.
    src = _program_src("Cold", 4)
    program = typecheck(parse_program(src))
    key, _ = task_keys(AnalysisTask(kind="analyze", proc_name="Cold0",
                                    program=program))
    victim = ring.owner(key)
    victim_idx = shards.index(victim)
    victim_proc = procs[victim_idx]

    with ServeClient(victim) as vc:
        worker_pids = vc.metrics()["worker_pids"]
        # Park the victim's single worker behind unrelated work so our
        # request is still in flight there when the SIGKILL lands.
        vc.submit(_program_src("Filler", 3))

    with ServeClient(router_sock) as c:
        acc = c.submit(src)
        time.sleep(0.3)  # let the groups reach the replicas
        victim_proc.kill()  # SIGKILL: no drain, no goodbye
        res = c.result(acc["id"])

    # The report is exactly what an undisturbed analysis produces.
    assert res["failures"] == 0
    from repro.core.analysis import program_report_from_json
    served = program_report_from_json(res["report"])
    batch = analyze_program(program, config=CONC)
    assert _stable(served) == _stable(batch)

    # The router buried the replica and re-homed its keyspace.
    assert victim in router_thread.router._dead
    counters = router_thread.router.metrics.snapshot()["counters"]
    assert counters.get("replica_failures", 0) >= 1
    assert counters.get("failover_resubmits", 0) >= 1
    survivors = ring.shards()
    assert survivors and victim not in survivors

    # The dead replica's workers notice the severed pipe and exit —
    # SIGKILL must not leak worker processes.
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if not any(_alive(p) for p in worker_pids):
            break
        time.sleep(0.1)
    leaked = [p for p in worker_pids if _alive(p)]
    assert not leaked, f"orphaned workers after SIGKILL: {leaked}"

    # And the fleet keeps serving new work on the survivors.
    with ServeClient(router_sock) as c:
        rep = c.analyze(_program_src("After", 1))
    assert not any(r.failed for r in rep.reports)


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
