"""Retry-backoff unit tests: the capped exponential schedule with
deterministic per-request jitter (`repro.serve.client.retry_delay`)."""

from repro.serve.client import BACKOFF_CAP, request_token, retry_delay


def test_deterministic_per_token_and_attempt():
    assert retry_delay("t", 3, 0.1) == retry_delay("t", 3, 0.1)
    # different attempts of the same request land at different offsets
    assert retry_delay("t", 1, 0.1) != retry_delay("t", 2, 0.1)


def test_jitter_envelope_half_to_full_base():
    for attempt in range(6):
        base = min(BACKOFF_CAP, 0.1 * 2 ** attempt)
        for token in ("a", "b", "c", "d"):
            d = retry_delay(token, attempt, 0.1)
            assert 0.5 * base <= d < base


def test_exponential_growth_until_cap():
    # Compare pre-jitter bases via a fixed token: growth must be
    # monotone in expectation and saturate at the cap.
    deltas = [retry_delay("t", a, 0.5, cap=4.0) for a in range(8)]
    assert all(d < 4.0 for d in deltas)
    assert max(deltas) >= 2.0  # reached the cap region (jitter >= 1/2)


def test_cap_bounds_every_attempt():
    for attempt in range(50):
        assert retry_delay("t", attempt, 100.0, cap=2.0) < 2.0


def test_distinct_tokens_spread_out():
    delays = {retry_delay(f"tok{i}", 0, 1.0) for i in range(32)}
    assert len(delays) == 32  # no thundering herd: all offsets differ


def test_zero_hint_still_backs_off():
    d = retry_delay("t", 0, 0.0)
    assert d > 0.0


def test_request_token_stable_and_content_addressed():
    fields = {"source": "procedure p() {}", "kind": "analyze"}
    assert request_token(fields) == request_token(dict(fields))
    other = dict(fields, kind="cons")
    assert request_token(fields) != request_token(other)


def test_request_token_survives_unserializable_values():
    token = request_token({"weird": object()})
    assert isinstance(token, str) and token
