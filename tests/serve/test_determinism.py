"""The server must be invisible in the results: a fig5 suite swept
through a warm daemon (coalescing on) is bit-identical — modulo
wall-clock fields — to the batch ``analyze_program(jobs=2)`` sweep of
the same program."""

from dataclasses import fields

import pytest

from repro.bench import compile_suite, make_suite
from repro.core import CONC, analyze_program
from repro.serve import ServeClient, ServerThread

# wall-clock / machine-local fields excluded from the equality check
_VOLATILE = {"seconds", "phases", "budget_remaining", "solver_stats",
             "queries", "cache_hits", "queries_saved"}


def _stable(report):
    return [{f.name: getattr(r, f.name) for f in fields(r)
             if f.name not in _VOLATILE} for r in report.reports]


@pytest.fixture(scope="module")
def suite():
    return make_suite("moufilter", scale=0.5)


def test_server_sweep_equals_batch_parallel_sweep(tmp_path, suite):
    names = [f.name for f in suite.functions]
    program = compile_suite(suite)
    batch = analyze_program(program, config=CONC, proc_names=names, jobs=2)

    sock = str(tmp_path / "s.sock")
    with ServerThread(sock, pool_size=2, queue_limit=32) as st:
        assert st.server.coalesce
        with ServeClient(sock) as client:
            served = client.analyze(suite.c_source, lang="c", procs=names)
            # Resubmitting the identical sweep must not change anything
            # (it coalesces with nothing in flight, then hits the
            # workers' in-memory state warm).
            again = client.analyze(suite.c_source, lang="c", procs=names)

    assert [r.proc_name for r in served.reports] == names
    assert _stable(served) == _stable(batch)
    assert _stable(again) == _stable(batch)
    assert served.config_name == batch.config_name
    assert served.prune_k == batch.prune_k
    assert served.n_failures == 0


def test_coalesced_twins_get_identical_reports(tmp_path, suite):
    from repro.core.tasks import AnalysisTask
    names = [f.name for f in suite.functions][:4]
    sock = str(tmp_path / "s.sock")
    with ServerThread(sock, pool_size=1, queue_limit=32) as st:
        # Park the only worker so submission A is still entirely in
        # flight when its twin B arrives: every one of B's tasks must
        # attach to A's computations.
        blocker = st.server.pool.submit(
            AnalysisTask(kind="sleep", payload=0.5))
        with ServeClient(sock) as client:
            a = client.submit(suite.c_source, lang="c", procs=names)
            b = client.submit(suite.c_source, lang="c", procs=names)
            ra = client.result(a["id"])["report"]
            rb = client.result(b["id"])["report"]
            coalesced = b["coalesced"]
            snap = client.metrics()
        blocker.result(timeout=30)
    # Coalesced tasks share the *same* result object, so the reports
    # match exactly — including the wall-clock fields.
    assert coalesced == len(names)
    assert snap["counters"]["coalesced_tasks"] >= coalesced
    assert ra == rb
