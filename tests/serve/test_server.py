"""In-process daemon tests: protocol verbs, coalescing, backpressure,
drain — all over a real Unix socket against a :class:`ServerThread`."""

import json
import socket
import threading
import time
from dataclasses import fields

import pytest

from repro.core import CONC, analyze_program, conservative_program
from repro.core.tasks import AnalysisTask
from repro.lang import parse_program, typecheck
from repro.serve import ServeClient, ServeError, ServerThread

FIG1_BPL = """
var Freed: [int]int;
procedure Foo(c: int, buf: int, cmd: int) modifies Freed;
{
  if (*) {
    A1: assert Freed[c] == 0;  Freed[c] := 1;
    A2: assert Freed[buf] == 0; Freed[buf] := 1;
    return;
  }
  if (cmd == 0) {
    if (*) {
      A3: assert Freed[c] == 0;  Freed[c] := 1;
      A4: assert Freed[buf] == 0; Freed[buf] := 1;
    }
  }
  A5: assert Freed[c] == 0;  Freed[c] := 1;
  A6: assert Freed[buf] == 0; Freed[buf] := 1;
}
"""

TWO_PROCS_BPL = """
procedure inc(x: int) returns (r: int)
  ensures r >= x;
{
  r := x + 1;
}

procedure dec(x: int) returns (r: int)
  ensures r <= x;
{
  r := x - 1;
}
"""

# wall-clock / machine-local fields excluded from equality checks
_VOLATILE = {"seconds", "phases", "budget_remaining", "solver_stats",
             "queries", "cache_hits", "queries_saved"}


def _stable(report):
    return [{f.name: getattr(r, f.name) for f in fields(r)
             if f.name not in _VOLATILE} for r in report.reports]


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    sock = str(tmp_path_factory.mktemp("serve") / "s.sock")
    with ServerThread(sock, pool_size=2, queue_limit=8) as st:
        yield st


@pytest.fixture()
def client(server):
    with ServeClient(server.server.address_spec) as c:
        yield c


class TestVerbs:
    def test_ping(self, client):
        resp = client.ping()
        assert resp["pong"] is True
        assert resp["draining"] is False

    def test_analyze_matches_batch(self, client):
        served = client.analyze(FIG1_BPL)
        program = typecheck(parse_program(FIG1_BPL))
        batch = analyze_program(program, config=CONC)
        assert _stable(served) == _stable(batch)
        assert served.config_name == "Conc"

    def test_cons_matches_batch(self, client):
        served = client.conservative(FIG1_BPL)
        program = typecheck(parse_program(FIG1_BPL))
        warnings, timeouts = conservative_program(program)
        assert served["warnings"] == warnings
        assert served["timeouts"] == timeouts
        assert served["failures"] == {}

    def test_status_then_result(self, client):
        acc = client.submit(TWO_PROCS_BPL)
        assert acc["procs"] == ["inc", "dec"]
        st = client.status(acc["id"])
        assert st["state"] in ("queued", "running", "done")
        assert st["total"] == 2
        res = client.result(acc["id"])
        assert res["failures"] == 0
        assert {r["proc_name"] for r in res["report"]["reports"]} == \
            {"inc", "dec"}
        assert client.status(acc["id"])["state"] == "done"

    def test_result_nowait_pending(self, client, server):
        # Hold the pool so the request cannot finish before we peek.
        blocker = server.server.pool.submit(
            AnalysisTask(kind="sleep", payload=0.4))
        acc = client.submit(FIG1_BPL)
        with pytest.raises(ServeError) as exc:
            client.result(acc["id"], wait=False)
        assert exc.value.code == "pending"
        blocker.result(timeout=30)
        assert client.result(acc["id"])["report"] is not None

    def test_metrics(self, client):
        acc = client.submit(FIG1_BPL)
        client.result(acc["id"])
        snap = client.metrics()
        assert snap["counters"]["requests_accepted"] >= 1
        assert snap["counters"]["requests_completed"] >= 1
        assert snap["counters"]["procs_submitted"] >= 1
        assert snap["workers"] == 2
        assert len(snap["worker_pids"]) == 2
        assert set(snap["pool"]) >= {"restarts", "retries", "deadline_kills",
                                     "crash_failures", "completed"}
        assert "submit" in snap["verb_latency"]
        assert snap["verb_latency"]["submit"]["count"] >= 1
        for hist in ("task_wait", "task_run", "request_latency"):
            assert {"count", "mean_ms", "p50_ms", "p90_ms",
                    "p99_ms"} <= set(snap[hist])

    def test_unknown_request(self, client):
        with pytest.raises(ServeError) as exc:
            client.status("q999999")
        assert exc.value.code == "unknown_request"

    def test_unknown_verb(self, client):
        with pytest.raises(ServeError) as exc:
            client.request("frobnicate")
        assert exc.value.code == "bad_request"

    def test_parse_error_is_bad_request(self, client):
        with pytest.raises(ServeError) as exc:
            client.submit("procedure oops(")
        assert exc.value.code == "bad_request"
        assert "parse failed" in str(exc.value)

    def test_unknown_procs_rejected(self, client):
        with pytest.raises(ServeError) as exc:
            client.submit(FIG1_BPL, procs=["Nope"])
        assert exc.value.code == "bad_request"

    def test_malformed_json_line(self, server):
        addr = server.server.address[1]
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
            s.connect(addr)
            s.sendall(b"this is not json\n")
            resp = json.loads(s.makefile("rb").readline())
        assert resp["ok"] is False
        assert resp["error"] == "bad_request"


class TestCoalescing:
    def test_identical_inflight_submissions_coalesce(self, tmp_path):
        sock = str(tmp_path / "s.sock")
        with ServerThread(sock, pool_size=1, queue_limit=8) as st:
            # Park the only worker so both submissions are in flight
            # together.
            blocker = st.server.pool.submit(
                AnalysisTask(kind="sleep", payload=0.5))
            with ServeClient(sock) as c:
                a = c.submit(FIG1_BPL)
                b = c.submit(FIG1_BPL)
                assert a["coalesced"] == 0
                assert b["coalesced"] == 1
                ra = c.result(a["id"])["report"]
                rb = c.result(b["id"])["report"]
                assert ra == rb
                assert c.metrics()["counters"]["coalesced_tasks"] >= 1
            blocker.result(timeout=30)

    def test_coalescing_can_be_disabled(self, tmp_path):
        sock = str(tmp_path / "s.sock")
        with ServerThread(sock, pool_size=1, queue_limit=8,
                          coalesce=False) as st:
            blocker = st.server.pool.submit(
                AnalysisTask(kind="sleep", payload=0.5))
            with ServeClient(sock) as c:
                a = c.submit(FIG1_BPL)
                b = c.submit(FIG1_BPL)
                assert a["coalesced"] == b["coalesced"] == 0
                # Two independent runs agree modulo wall-clock fields.
                from repro.core.analysis import program_report_from_json
                ra = program_report_from_json(c.result(a["id"])["report"])
                rb = program_report_from_json(c.result(b["id"])["report"])
                assert _stable(ra) == _stable(rb)
            blocker.result(timeout=30)


class TestBackpressure:
    def test_overloaded_submit_rejected_with_retry_after(self, tmp_path):
        sock = str(tmp_path / "s.sock")
        with ServerThread(sock, pool_size=1, queue_limit=1) as st:
            blocker = st.server.pool.submit(
                AnalysisTask(kind="sleep", payload=0.6))
            with ServeClient(sock) as c:
                c.request("submit", source=FIG1_BPL)  # fills the queue
                with pytest.raises(ServeError) as exc:
                    c.request("submit", source=TWO_PROCS_BPL)
                assert exc.value.code == "overloaded"
                assert exc.value.response["retry_after"] > 0
                assert c.metrics()["counters"]["requests_rejected"] >= 1
                # The client's retry loop rides out the backpressure.
                acc = c.submit(TWO_PROCS_BPL)
                assert c.result(acc["id"])["failures"] == 0
            blocker.result(timeout=30)


class TestDrain:
    def test_drain_completes_accepted_and_rejects_new(self, tmp_path):
        sock = str(tmp_path / "s.sock")
        st = ServerThread(sock, pool_size=1, queue_limit=8).start()
        blocker = st.server.pool.submit(
            AnalysisTask(kind="sleep", payload=0.5))
        accept_client = ServeClient(sock)
        acc = accept_client.submit(FIG1_BPL)
        drain_resp = []
        drainer = ServeClient(sock)
        t = threading.Thread(
            target=lambda: drain_resp.append(drainer.drain()))
        t.start()
        time.sleep(0.15)  # let the drain verb land
        with ServeClient(sock) as late:
            with pytest.raises(ServeError) as exc:
                late.request("submit", source=FIG1_BPL)
            assert exc.value.code == "draining"
        t.join(120)
        assert drain_resp and drain_resp[0]["drained"] is True
        assert drain_resp[0]["completed"] >= 1
        blocker.result(timeout=30)
        # The accepted request was finished before the server exited.
        req = st.server._requests[acc["id"]]
        assert req.state == "done"
        assert req.report_json is not None
        # Clean exit: socket unlinked, no live workers.
        st.stop()
        assert st.server.pool.worker_pids() == []
        accept_client.close()
        drainer.close()
