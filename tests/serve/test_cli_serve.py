"""End-to-end daemon tests through the real CLI: ``python -m repro
serve`` + ``python -m repro submit`` in subprocesses, byte-identical
output vs the batch CLI, env-var socket discovery, and clean SIGTERM
shutdown with no orphaned workers."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve import ServeClient

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")

FIG1_BPL = """
var Freed: [int]int;
procedure Foo(c: int, buf: int, cmd: int) modifies Freed;
{
  if (*) {
    A1: assert Freed[c] == 0;  Freed[c] := 1;
    A2: assert Freed[buf] == 0; Freed[buf] := 1;
    return;
  }
  if (cmd == 0) {
    if (*) {
      A3: assert Freed[c] == 0;  Freed[c] := 1;
      A4: assert Freed[buf] == 0; Freed[buf] := 1;
    }
  }
  A5: assert Freed[c] == 0;  Freed[c] := 1;
  A6: assert Freed[buf] == 0; Freed[buf] := 1;
}
"""


def _env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    env.pop("REPRO_SERVE_SOCKET", None)
    env.pop("REPRO_CACHE_DIR", None)
    env.update(extra)
    return env


def _repro(*args, **env_extra):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(**env_extra), capture_output=True, text=True, timeout=300)


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli_serve")
    sock = str(tmp / "s.sock")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock,
         "--pool", "2"],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    client = ServeClient(sock)
    try:
        client.wait_ready(timeout=120)
    except Exception:
        proc.kill()
        raise
    yield proc, sock, client
    client.close()
    if proc.poll() is None:
        proc.terminate()
        proc.wait(60)


@pytest.fixture(scope="module")
def fig1_file(tmp_path_factory):
    p = tmp_path_factory.mktemp("inputs") / "fig1.bpl"
    p.write_text(FIG1_BPL)
    return str(p)


class TestSubmitParity:
    def test_submit_output_is_byte_identical_to_batch(self, daemon,
                                                      fig1_file):
        _, sock, _ = daemon
        args = ("--config", "Conc", "--config", "A1", "--show-cons",
                fig1_file)
        batch = _repro(*args)
        served = _repro("submit", "--socket", sock, *args)
        assert served.stdout == batch.stdout
        assert served.returncode == batch.returncode == 1

    def test_socket_from_environment(self, daemon, fig1_file):
        _, sock, _ = daemon
        batch = _repro(fig1_file)
        served = _repro("submit", fig1_file, REPRO_SERVE_SOCKET=sock)
        assert served.stdout == batch.stdout
        assert served.returncode == batch.returncode

    def test_unknown_procedure_exits_2(self, daemon, fig1_file):
        _, sock, _ = daemon
        res = _repro("submit", "--socket", sock, "--proc", "Nope", fig1_file)
        assert res.returncode == 2
        assert "no procedure named 'Nope'" in res.stderr

    def test_submit_without_socket_exits_2(self, fig1_file):
        res = _repro("submit", fig1_file)
        assert res.returncode == 2
        assert "REPRO_SERVE_SOCKET" in res.stderr


class TestDaemonLifecycle:
    def test_sigterm_drains_cleanly_without_orphans(self, daemon):
        proc, sock, client = daemon
        pids = client.metrics()["worker_pids"]
        assert len(pids) == 2
        client.close()
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=120) == 0
        out = proc.stdout.read()
        assert "drained, exiting" in out
        assert not os.path.exists(sock)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if not any(_alive(p) for p in pids):
                break
            time.sleep(0.05)
        alive = [p for p in pids if _alive(p)]
        assert not alive, f"orphaned workers: {alive}"


def test_serve_without_socket_exits_2():
    res = _repro("serve")
    assert res.returncode == 2
    assert "REPRO_SERVE_SOCKET" in res.stderr


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
