"""The monotonicity-aware oracle fast paths (and the Budget helpers).

The semantics guarantee, for clause sets ``c2 ⊆ c1`` over the same
vocabulary, ``Fail(c1) ⊆ Fail(c2)`` and ``Dead(c2) ⊆ Dead(c1)``.  The
optimized oracle exploits that through explicit parent hints
(``superset_of`` / ``subset_of``), cache-derived bounds, and a bounded
fail enumeration for Algorithm 2's ``|Fail| > MinFail`` pruning.  Every
fast path must be invisible in the results — property-tested here against
a hint-free oracle and against a reference (seed) implementation of the
Algorithm-2 search.
"""

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.acspec import (SearchBudgetExceeded, _SearchBudgetExceeded,
                               _spec_key, find_almost_correct_specs)
from repro.core.clauses import normalize, prune_clauses
from repro.core.cover import predicate_cover
from repro.core.deadfail import AnalysisTimeout, Budget, DeadFailOracle
from repro.core.predicates import mine_predicates
from repro.lang.ast import (AssertStmt, AssumeStmt, IfStmt, IntLit,
                            Procedure, Program, RelExpr, SkipStmt, Type,
                            VarExpr, seq)
from repro.lang.transform import instrument
from repro.vc.encode import EncodedProcedure

VARS = ["x", "y"]


@st.composite
def small_procs(draw):
    """Random tiny procedures with branching and 1-4 assertions."""
    n_stmts = draw(st.integers(1, 3))
    label = [0]

    def cond():
        v = VarExpr(draw(st.sampled_from(VARS)))
        op = draw(st.sampled_from(["==", "!=", "<", "<="]))
        return RelExpr(op, v, IntLit(draw(st.integers(-1, 1))))

    def leaf():
        kind = draw(st.integers(0, 2))
        if kind == 0:
            label[0] += 1
            return AssertStmt(cond(), label=f"A{label[0]}")
        if kind == 1:
            return AssumeStmt(cond())
        return SkipStmt()

    def stmt(d):
        if d == 0 or draw(st.booleans()):
            return leaf()
        nondet = draw(st.booleans())
        return IfStmt(None if nondet else cond(), stmt(d - 1), stmt(d - 1))

    body = seq(*[stmt(draw(st.integers(0, 2))) for _ in range(n_stmts)])
    label[0] += 1
    body = seq(body, AssertStmt(cond(), label=f"A{label[0]}"))
    return instrument(body)


def make_oracle(body, max_preds=4):
    var_types = {v: Type.INT for v in VARS}
    proc = Procedure(name="P", params=tuple(VARS), returns=(),
                     var_types=var_types, body=body)
    prog = Program(procedures={"P": proc})
    enc = EncodedProcedure(prog, proc)
    preds = mine_predicates(prog, proc, max_preds=max_preds)
    return DeadFailOracle(enc, preds)


# ----------------------------------------------------------------------
# hinted fast paths vs. plain queries
# ----------------------------------------------------------------------


@given(small_procs())
@settings(max_examples=40, deadline=None)
def test_hinted_results_equal_unhinted(body):
    plain = make_oracle(body)
    hinted = make_oracle(body)
    cover = predicate_cover(plain)
    predicate_cover(hinted)  # same vocabulary, same solver state shape
    clauses = sorted(cover, key=lambda c: sorted(c, key=abs))
    # walk a weakening chain c1 ⊃ c2 ⊃ ... computing parents first, so
    # every hinted call gets a genuine parent result
    chain = [frozenset(clauses[i:]) for i in range(len(clauses) + 1)]
    for c1, c2 in zip(chain, chain[1:]):
        fail1 = hinted.fail_set(c1)
        dead1 = hinted.dead_set(c1)
        assert hinted.fail_set(c2, superset_of=fail1) == plain.fail_set(c2)
        assert hinted.dead_set(c2, subset_of=dead1) == plain.dead_set(c2)


@given(small_procs(), st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_bounded_fail_agrees_with_full(body, limit):
    plain = make_oracle(body)
    bounded = make_oracle(body)
    cover = predicate_cover(plain)
    predicate_cover(bounded)
    for drop in sorted(cover, key=lambda c: sorted(c, key=abs)):
        sub = cover - {drop}
        full = plain.fail_set(sub)
        got = bounded.fail_set_bounded(sub, limit)
        if len(full) <= limit:
            assert got == full
        else:
            assert got is None
    # an unexceeded bounded call must have cached the exact set
    full = plain.fail_set(cover)
    assert bounded.fail_set_bounded(cover, len(full)) == full
    assert bounded.cached_fail(cover) == full


# ----------------------------------------------------------------------
# the optimized search vs. a reference (seed) Algorithm 2
# ----------------------------------------------------------------------


def reference_find_acs(oracle, cover, prune_k=None, max_nodes=20000):
    """The seed implementation: full fail sets, no hints, no bounds."""
    raw_specs, min_fail, has_sib = [cover], 0, False
    dead0 = oracle.dead_set(cover)
    if dead0:
        has_sib = True
        frontier, visited, outputs = [cover], {cover}, set()
        min_fail = len(oracle.enc.assert_events)
        nodes = 0
        while frontier:
            c1 = frontier.pop()
            for clause in sorted(c1, key=lambda c: sorted(c, key=abs)):
                c2 = c1 - {clause}
                if c2 in visited:
                    continue
                visited.add(c2)
                nodes += 1
                assert nodes <= max_nodes
                n_fail = len(oracle.fail_set(c2))
                if n_fail > min_fail:
                    continue
                if oracle.dead_set(c2):
                    frontier.append(c2)
                elif n_fail == min_fail:
                    outputs.add(c2)
                else:
                    min_fail = n_fail
                    outputs = {c2}
        outputs = {c for c in outputs if not any(c < d for d in outputs)}
        raw_specs = sorted(outputs, key=_spec_key)
    post, seen = [], set()
    for spec in raw_specs:
        processed = prune_clauses(normalize(spec), prune_k)
        if processed not in seen:
            seen.add(processed)
            post.append(processed)
    warnings = frozenset()
    for spec in post:
        warnings |= oracle.fail_set(spec)
    return raw_specs, post, warnings, (min_fail if has_sib else 0), has_sib


@given(small_procs(), st.sampled_from([None, 2, 1]))
@settings(max_examples=40, deadline=None)
def test_search_equals_seed_reference(body, prune_k):
    ref_oracle = make_oracle(body)
    opt_oracle = make_oracle(body)
    cover = predicate_cover(ref_oracle)
    predicate_cover(opt_oracle)
    raw, post, warnings, min_fail, has_sib = reference_find_acs(
        ref_oracle, cover, prune_k=prune_k)
    res = find_almost_correct_specs(opt_oracle, cover, prune_k=prune_k)
    assert res.has_abstract_sib == has_sib
    assert res.min_fail == min_fail
    assert res.raw_specs == raw
    assert res.specs == post
    assert res.warnings == warnings
    # Query *counts* are deliberately not compared per-example: bounded
    # enumeration trades cache completeness for early exit and witness
    # harvesting is model-dependent, so tiny adversarial programs can tip
    # either way.  The aggregate saving is what matters and is measured
    # on the real suites (BENCH_perf.json).


# ----------------------------------------------------------------------
# budget semantics (satellite)
# ----------------------------------------------------------------------


class TestBudget:
    def test_none_is_unbounded(self):
        b = Budget(None)
        b.check()
        assert b.remaining() is None

    def test_zero_seconds_already_expired(self):
        b = Budget(0.0)
        with pytest.raises(AnalysisTimeout):
            b.check()
        assert b.remaining() == 0.0

    def test_negative_seconds_already_expired(self):
        b = Budget(-5.0)
        with pytest.raises(AnalysisTimeout):
            b.check()
        assert b.remaining() == 0.0

    def test_positive_budget_counts_down(self):
        b = Budget(60.0)
        b.check()
        r = b.remaining()
        assert 0.0 < r <= 60.0
        time.sleep(0.01)
        assert b.remaining() < r

    def test_expiry_by_clock(self):
        b = Budget(0.01)
        time.sleep(0.03)
        with pytest.raises(AnalysisTimeout):
            b.check()
        assert b.remaining() == 0.0


def test_search_budget_exceeded_is_public_with_alias():
    assert _SearchBudgetExceeded is SearchBudgetExceeded
    assert issubclass(SearchBudgetExceeded, Exception)
