"""Explicit VCS diffs (`repro ci --changed-files`) and the per-class
warning-delta breakdown.

Runs on the committed fixture repository (``tests/fixtures/ci_repo``),
like ``test_incremental.py``: the explicit diff must skip the
fingerprint pass on untouched files without changing the dirty-set
classification, warnings, or the delta."""

import json
import shutil
from pathlib import Path

from repro.cli import run
from repro.core.incremental import (config_fingerprint, plan_increment,
                                    run_ci, warning_delta)
from repro.core.config import CONC
from repro.frontend.ingest import ingest_directory
from repro.scenarios.classes import DEFAULT_CLASSES

FIXTURE = Path(__file__).resolve().parents[1] / "fixtures" / "ci_repo"

EDIT_OLD = "  Freed[p] := 1;\n"
EDIT_NEW = "  Freed[p] := 1;\n  R2: assert Freed[p] == 0;\n"


def make_repo(tmp_path: Path) -> Path:
    repo = tmp_path / "repo"
    shutil.copytree(FIXTURE, repo)
    return repo


def edit_release(repo: Path) -> None:
    path = repo / "alloc.bpl"
    text = path.read_text()
    assert EDIT_OLD in text
    path.write_text(text.replace(EDIT_OLD, EDIT_NEW, 1))


class TestPlanWithExplicitDiff:
    def test_untouched_files_skip_fingerprinting(self, tmp_path):
        repo = make_repo(tmp_path)
        first = run_ci(repo, repo / "m.json")
        edit_release(repo)
        ingested = ingest_directory(repo)
        previous = json.loads((repo / "m.json").read_text())
        full = plan_increment(ingested, previous)
        diffed = plan_increment(ingested, previous,
                                changed_files=["alloc.bpl"])
        # identical classification and schedule...
        assert diffed.classes == full.classes
        assert diffed.order == full.order == ["Release"]
        assert diffed.surface_fps == full.surface_fps
        assert diffed.spec_fps == full.spec_fps
        # ...but only alloc.bpl's procedures were fingerprinted
        assert full.fingerprints_skipped == 0
        n_outside = sum(1 for f in ingested.proc_files.values()
                        if f != "alloc.bpl")
        assert diffed.fingerprints_skipped == n_outside > 0
        assert first.stats["fingerprints_skipped"] == 0

    def test_diff_ignored_on_cold_run(self, tmp_path):
        repo = make_repo(tmp_path)
        ingested = ingest_directory(repo)
        plan = plan_increment(ingested, None, changed_files=[])
        assert plan.reason == "cold"
        assert plan.fingerprints_skipped == 0
        assert len(plan.order) == len(ingested.proc_files)

    def test_run_ci_with_diff_matches_full_run(self, tmp_path):
        repo_a = make_repo(tmp_path / "a")
        repo_b = make_repo(tmp_path / "b")
        for repo in (repo_a, repo_b):
            run_ci(repo, repo / "m.json")
            edit_release(repo)
        full = run_ci(repo_a, repo_a / "m.json")
        diffed = run_ci(repo_b, repo_b / "m.json",
                        changed_files=["alloc.bpl"])
        assert diffed.delta == full.delta
        assert diffed.plan.order == full.plan.order
        assert diffed.stats["fingerprints_skipped"] > 0
        # the written manifests agree except for wall clocks
        ma = json.loads((repo_a / "m.json").read_text())
        mb = json.loads((repo_b / "m.json").read_text())
        for entry in (*ma["procedures"].values(),
                      *mb["procedures"].values()):
            entry.pop("wall")
        assert ma == mb

    def test_absolute_paths_are_normalized(self, tmp_path):
        repo = make_repo(tmp_path)
        run_ci(repo, repo / "m.json")
        edit_release(repo)
        result = run_ci(repo, repo / "m.json",
                        changed_files=[str((repo / "alloc.bpl").resolve())])
        assert result.plan.order == ["Release"]
        assert result.stats["fingerprints_skipped"] > 0


class TestConfigFingerprint:
    def test_bug_classes_default_is_recorded(self):
        cfg = config_fingerprint(CONC, prune_k=None, unroll_depth=2,
                                 max_preds=12)
        assert cfg["bug_classes"] == sorted(DEFAULT_CLASSES)

    def test_changing_bug_classes_invalidates_manifest(self, tmp_path):
        repo = make_repo(tmp_path)
        run_ci(repo, repo / "m.json")
        again = run_ci(repo, repo / "m.json",
                       bug_classes=frozenset({"null-deref"}))
        assert again.plan.reason == "config"


class TestDeltaBugClasses:
    def test_delta_carries_per_class_counts(self, tmp_path):
        repo = make_repo(tmp_path)
        run_ci(repo, repo / "m.json")
        edit_release(repo)
        result = run_ci(repo, repo / "m.json")
        high = result.delta["high"]
        assert high["bug_classes"]["user-assert"]["new"] == len(high["new"])
        cons = result.delta["cons"]
        assert "call-precondition" in cons["bug_classes"]
        for counts in cons["bug_classes"].values():
            assert set(counts) == {"new", "fixed", "unchanged"}

    def test_manifest_entries_carry_bug_classes(self, tmp_path):
        repo = make_repo(tmp_path)
        result = run_ci(repo, repo / "m.json")
        for entry in result.manifest["procedures"].values():
            assert "bug_classes" in entry
        buggy = result.manifest["procedures"]["Buggy"]
        assert sum(buggy["bug_classes"].values()) == len(buggy["warnings"])

    def test_empty_delta_has_empty_breakdown(self, tmp_path):
        repo = make_repo(tmp_path)
        run_ci(repo, repo / "m.json")
        result = run_ci(repo, repo / "m.json")  # no edit
        for cls in ("high", "cons"):
            d = result.delta[cls]
            assert d["new"] == [] and d["fixed"] == []
            for counts in d["bug_classes"].values():
                assert counts["new"] == 0 and counts["fixed"] == 0


class TestCliChangedFiles:
    def test_changed_files_flag(self, tmp_path):
        import io
        repo = make_repo(tmp_path)
        manifest = tmp_path / "m.json"
        assert run(["ci", str(repo), "--manifest", str(manifest)],
                   out=io.StringIO()) == 1
        edit_release(repo)
        listing = tmp_path / "diff.txt"
        listing.write_text("alloc.bpl\n")
        buf = io.StringIO()
        rc = run(["ci", str(repo), "--manifest", str(manifest),
                  "--changed-files", str(listing)], out=buf)
        out = buf.getvalue()
        assert rc == 1
        assert "analyzing 1 (1 changed" in out
        assert "skipped fingerprinting" in out
        assert "new by class: user-assert=" in out

    def test_missing_listing_exits_2(self, tmp_path, capsys):
        repo = make_repo(tmp_path)
        rc = run(["ci", str(repo), "--changed-files",
                  str(tmp_path / "nope.txt")])
        capsys.readouterr()
        assert rc == 2
