"""Solver tuning knobs must not change any semantic result.

Clause-DB reduction, the incremental LIA trail and the cross-query
theory-lemma cache each reshape the *search* (counters and timings move)
but every verdict — fail/dead sets, warnings, specs, classifications —
must be bit-identical with each knob off.  Checked on the committed fuzz
corpus and on fig5-small style generated suites."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.runner import compile_suite, run_suite
from repro.bench.suites import make_suite
from repro.core.analysis import analyze_program
from repro.core.config import ALL_CONFIGS
from repro.core.deadfail import DeadFailOracle, clear_baseline_cache
from repro.core.predicates import mine_predicates
from repro.fuzz.oracles import _fields
from repro.lang.parser import parse_program
from repro.lang.transform import prepare_procedure
from repro.lang.typecheck import typecheck
from repro.smt.tuning import tuning
from repro.vc.encode import EncodedProcedure

CORPUS = sorted(
    (Path(__file__).resolve().parent.parent / "corpus").glob("*.bpl"))

KNOBS = ["reduce_learnts", "lia_incremental", "theory_lemma_cache"]

#: every single-knob-off setting plus everything-off
SETTINGS = [{k: False} for k in KNOBS] + [{k: False for k in KNOBS}]


def _setting_id(setting):
    return "+".join(sorted(k for k, v in setting.items() if not v))


def _analyze(program, **overrides):
    clear_baseline_cache()
    with tuning(**overrides):
        report = analyze_program(program, timeout=None, lia_budget=20000,
                                 max_preds=6)
    return [(r.proc_name, _fields(r)) for r in report.reports]


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_reports_invariant_under_knobs(path):
    program = typecheck(parse_program(path.read_text()))
    baseline = _analyze(program)
    for setting in SETTINGS:
        assert _analyze(program, **setting) == baseline, \
            f"{path.name}: report changed under {_setting_id(setting)}"


def test_fail_and_dead_sets_invariant_under_knobs():
    # drive the oracle directly: identical fail/dead sets for a fixed
    # family of specs, knob by knob
    program = typecheck(parse_program(CORPUS[0].read_text()))
    name = next(n for n, p in program.procedures.items()
                if p.body is not None)

    def sets(**overrides):
        clear_baseline_cache()
        with tuning(**overrides):
            prepared = prepare_procedure(program, program.proc(name))
            preds = mine_predicates(program, prepared, max_preds=4)
            enc = EncodedProcedure(program, prepared)
            oracle = DeadFailOracle(enc, preds)
            specs = [frozenset()]
            for i in range(1, len(preds) + 1):
                specs.append(frozenset({frozenset({i})}))
                specs.append(frozenset({frozenset({-i})}))
            return [(oracle.fail_set(s), oracle.dead_set(s))
                    for s in specs]

    baseline = sets()
    for setting in SETTINGS:
        assert sets(**setting) == baseline, \
            f"fail/dead sets changed under {_setting_id(setting)}"


@pytest.mark.parametrize("suite_name", ["event", "moufilter"])
def test_fig5_small_suites_invariant_under_knobs(suite_name):
    # a fig5-small style sweep (same generator and configurations the
    # benchmark uses, smallest suites to keep this tier-1 friendly)
    suite = make_suite(suite_name, scale=0.5)
    program = compile_suite(suite)

    def sweep(**overrides):
        out = []
        with tuning(**overrides):
            for config in ALL_CONFIGS:
                run = run_suite(suite, config, timeout=None,
                                program=program, max_preds=6)
                out.append((config.name, run.warnings, run.timed_out,
                            run.n_procs, run.avg_preds, run.avg_clauses))
        return out

    baseline = sweep()
    for setting in SETTINGS:
        assert sweep(**setting) == baseline, \
            f"{suite_name}: sweep changed under {_setting_id(setting)}"
