"""The ``jobs > 1`` process-pool sweep must be invisible in the results:
identical reports (modulo wall-clock fields) and identical Cons baseline,
in the serial report order."""

from dataclasses import fields

from repro.bench import compile_suite, make_suite
from repro.core import A2, CONC, analyze_program, conservative_program

# wall-clock / machine-local fields excluded from the equality check
_VOLATILE = {"seconds", "phases", "budget_remaining", "solver_stats",
             "queries", "cache_hits", "queries_saved"}


def _stable(report):
    return [{f.name: getattr(r, f.name) for f in fields(r)
             if f.name not in _VOLATILE} for r in report.reports]


def _program():
    suite = make_suite("moufilter", scale=0.5)
    return compile_suite(suite), [f.name for f in suite.functions]


def test_parallel_sweep_equals_serial():
    program, names = _program()
    serial = analyze_program(program, config=CONC, proc_names=names)
    parallel = analyze_program(program, config=CONC, proc_names=names,
                               jobs=2)
    assert _stable(parallel) == _stable(serial)
    assert [r.proc_name for r in parallel.reports] == names


def test_parallel_sweep_equals_serial_abstract_config():
    program, names = _program()
    serial = analyze_program(program, config=A2, proc_names=names)
    parallel = analyze_program(program, config=A2, proc_names=names, jobs=2)
    assert _stable(parallel) == _stable(serial)


def test_parallel_conservative_equals_serial():
    program, names = _program()
    serial = conservative_program(program, proc_names=names)
    parallel = conservative_program(program, proc_names=names, jobs=2)
    assert parallel == serial


def test_jobs_one_is_the_serial_path():
    program, names = _program()
    a = analyze_program(program, config=CONC, proc_names=names)
    b = analyze_program(program, config=CONC, proc_names=names, jobs=1)
    assert _stable(a) == _stable(b)
