"""Edge cases across the analysis pipeline: degenerate procedures,
assertion-free bodies, pure-nondet control flow, spec-only programs."""

import pytest

from repro import (CONC, A2, SibStatus, analyze_program, compile_c,
                   find_abstract_sibs, parse_program, typecheck)


class TestDegenerateProcedures:
    def test_assertion_free_procedure_is_correct(self):
        prog = typecheck(parse_program(
            "procedure P(x: int) { x := x + 1; }"))
        res = find_abstract_sibs(prog, "P")
        assert res.status == SibStatus.CORRECT
        assert res.warnings == []
        assert res.conservative_warnings == []

    def test_empty_body(self):
        prog = typecheck(parse_program("procedure P() { skip; }"))
        res = find_abstract_sibs(prog, "P")
        assert res.status == SibStatus.CORRECT

    def test_spec_only_program_analyzes_nothing(self):
        prog = typecheck(parse_program(
            "procedure E(x: int) returns (r: int);"))
        rep = analyze_program(prog)
        assert rep.reports == []

    def test_assume_false_body(self):
        # everything after assume false is unreachable; baseline pruning
        # must keep the analysis sane
        prog = typecheck(parse_program("""
            procedure P(x: int) {
              assume false;
              A: assert x == 0;
            }
        """))
        res = find_abstract_sibs(prog, "P")
        assert res.status == SibStatus.CORRECT
        assert res.conservative_warnings == []

    def test_assert_false_reachable(self):
        prog = typecheck(parse_program(
            "procedure P() { A: assert false; }"))
        res = find_abstract_sibs(prog, "P")
        # fails on every input; with Q = {} the only weakening is true
        assert res.conservative_warnings == ["A"]
        assert res.warnings == ["A"]

    def test_pure_nondet_control_flow(self):
        prog = typecheck(parse_program("""
            procedure P(x: int) {
              if (*) { if (*) { A: assert x != 0; } }
            }
        """))
        res = find_abstract_sibs(prog, "P")
        assert res.status == SibStatus.MAYBUG
        assert res.warnings == []
        assert res.specs == ["!(0 == x)"]

    def test_trivially_true_assert(self):
        prog = typecheck(parse_program(
            "procedure P(x: int) { A: assert x == x; }"))
        res = find_abstract_sibs(prog, "P")
        assert res.status == SibStatus.CORRECT


class TestRecursionAndShapes:
    def test_recursive_call_elaborates(self):
        # recursion is fine modulo contracts: the callee is its spec
        prog = compile_c("""
            int fact(int n) {
              if (n <= 1) { return 1; }
              return n * fact(n - 1);
            }
        """)
        res = find_abstract_sibs(prog, "fact", config=CONC)
        assert res.status == SibStatus.CORRECT

    def test_deep_branch_nesting(self):
        branches = "assert(p != NULL);"
        src = "void f(int *p, int a, int b, int c) {"
        src += "if (a) { if (b) { if (c) { *p = 1; } } }"
        src += "}"
        prog = compile_c(src)
        res = find_abstract_sibs(prog, "f", config=CONC)
        assert res.status in (SibStatus.MAYBUG, SibStatus.SIB)

    def test_many_assertions_one_procedure(self):
        body = "\n".join(f"*p{i} = {i};" for i in range(5))
        params = ", ".join(f"int *p{i}" for i in range(5))
        prog = compile_c(f"void f({params}) {{ {body} }}")
        res = find_abstract_sibs(prog, "f", config=CONC, max_preds=5)
        assert len(res.conservative_warnings) == 5
        assert res.warnings == []  # all independently env-suppressible

    def test_havoc_heavy_procedure(self):
        prog = typecheck(parse_program("""
            procedure P(x: int) {
              havoc x;
              if (*) { havoc x; }
              A: assert x != 0;
            }
        """))
        res = find_abstract_sibs(prog, "P")
        # havoc erases the entry vocabulary: Q = {} and the warning shows
        assert res.preds == []
        assert res.warnings == ["A"]


class TestConfigurationEdges:
    def test_a2_on_callfree_procedure_equals_conc_semantics(self):
        # havoc-returns changes nothing without calls
        prog = typecheck(parse_program("""
            procedure P(x: int) {
              A: assert x != 0;
              if (x == 0) { skip; }
            }
        """))
        conc = find_abstract_sibs(prog, "P", config=CONC)
        from repro.core import A0
        a0 = find_abstract_sibs(prog, "P", config=A0)
        assert conc.warnings == a0.warnings
        assert conc.specs == a0.specs

    def test_max_preds_zero_degenerates_to_cons(self):
        prog = typecheck(parse_program(
            "procedure P(x: int) { A: assert x != 0; }"))
        res = find_abstract_sibs(prog, "P", max_preds=0)
        # Q = {}: every conservative warning is reported
        assert res.warnings == res.conservative_warnings == ["A"]
