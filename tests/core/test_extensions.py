"""Tests for the extension modules: doomed points, interprocedural
contracts (§7 future work), witness paths, triage, and semantic spec
simplification."""

import pytest

from repro import compile_c, parse_program, typecheck
from repro.core import (CONC, DoomedReport, analyze_program_interprocedural,
                        find_abstract_sibs, find_doomed, infer_contracts,
                        strengthen_program, triage_program, witness_path)
from repro.core.deadfail import DeadFailOracle
from repro.core.predicates import mine_predicates
from repro.lang.transform import prepare_procedure
from repro.vc.encode import EncodedProcedure


class TestDoomed:
    def test_doomed_assert_detected(self):
        prog = compile_c("""
            void f(int *p) {
              p = NULL;
              *p = 1;
            }
        """)
        rep = find_doomed(prog, "f")
        assert rep.doomed == ["deref$1"]
        assert rep.unreachable == []

    def test_normal_assert_not_doomed(self):
        prog = compile_c("void f(int *p) { *p = 1; }")
        rep = find_doomed(prog, "f")
        assert rep.doomed == []

    def test_unreachable_assert(self):
        prog = typecheck(parse_program("""
            procedure P(x: int) {
              assume x > 0;
              if (x < 0) {
                A: assert x == 99;
              }
            }
        """))
        rep = find_doomed(prog, "P")
        assert rep.unreachable == ["A"]
        assert rep.doomed == []

    def test_guarded_doom(self):
        # doomed only on one branch -> not doomed overall (can pass)
        prog = typecheck(parse_program("""
            procedure P(x: int) {
              if (x == 0) {
                A: assert x != 0;
              }
            }
        """))
        rep = find_doomed(prog, "P")
        # A fails whenever reached (reached => x == 0 => assert false)
        assert rep.doomed == ["A"]

    def test_always_true_assert(self):
        prog = typecheck(parse_program(
            "procedure P(x: int) { A: assert x == x; }"))
        rep = find_doomed(prog, "P")
        assert rep.doomed == [] and rep.unreachable == []


INTERPROC_SRC = """
void writeval(int *p) { *p = 7; }

void good_caller(int *q) {
  if (q != NULL) { writeval(q); }
}

void bad_caller(void) {
  int *r = (int *)malloc(8);
  writeval(r);
  if (r != NULL) { *r = 9; }
}
"""


class TestInterprocedural:
    @pytest.fixture(scope="class")
    def result(self):
        return analyze_program_interprocedural(compile_c(INTERPROC_SRC),
                                               config=CONC)

    def test_contract_inferred_for_callee(self, result):
        assert result.contracts == {"writeval": "!(0 == p)"}

    def test_intra_pass_misses_everything(self, result):
        assert all(not r.warnings for r in result.intra.reports)

    def test_bad_caller_flagged_good_caller_clean(self, result):
        new = result.new_warnings
        assert list(new) == ["bad_caller"]
        assert new["bad_caller"] == ["pre$2$writeval"]

    def test_strengthen_program_adds_requires(self):
        prog = compile_c(INTERPROC_SRC)
        contracts = infer_contracts(prog, config=CONC)
        strengthened = strengthen_program(prog, contracts)
        from repro.lang.ast import BoolLit
        req = strengthened.proc("writeval").requires
        assert not isinstance(req, BoolLit)
        # untouched procedures keep requires true
        req2 = strengthened.proc("good_caller").requires
        assert isinstance(req2, BoolLit) and req2.value

    def test_no_contract_from_true_spec(self):
        # a verified procedure yields no contract
        prog = compile_c("void g(int *p) { if (p != NULL) { *p = 1; } }")
        assert infer_contracts(prog, config=CONC) == {}

    def test_lam_constants_never_leak_into_contracts(self):
        prog = compile_c("""
            void h(void) {
              int *p = (int *)malloc(4);
              *p = 1;
              if (p != NULL) { *p = 2; }
            }
        """)
        contracts = infer_contracts(prog, config=CONC)
        for text in contracts.values():
            assert "lam$" not in text


class TestWitness:
    def _enc(self, src, name):
        prog = compile_c(src)
        proc = prepare_procedure(prog, prog.proc(name))
        return EncodedProcedure(prog, proc)

    def test_witness_for_feasible_failure(self):
        enc = self._enc("void f(int *p) { *p = 1; }", "f")
        ev = enc.assert_events[0]
        path = witness_path(enc, ev.aid)
        assert path is not None
        assert path[-1] == "FAIL   deref$1"
        assert any("entry" in step for step in path)

    def test_witness_none_for_infeasible(self):
        enc = self._enc(
            "void f(int *p) { if (p != NULL) { *p = 1; } }", "f")
        ev = enc.assert_events[0]
        assert witness_path(enc, ev.aid) is None

    def test_witness_stops_at_failure(self):
        enc = self._enc(
            "void f(int *p) { *p = 1; if (p != NULL) { *p = 2; } }", "f")
        first = enc.assert_events[0]
        path = witness_path(enc, first.aid)
        assert path[-1].startswith("FAIL")
        assert not any("then" in s or "else" in s for s in path)

    def test_witness_shows_passed_asserts(self):
        enc = self._enc(
            "void f(int *p, int *q) { *p = 1; *q = 2; }", "f")
        second = enc.assert_events[1]
        path = witness_path(enc, second.aid)
        assert "pass   deref$1" in path
        assert path[-1] == "FAIL   deref$2"


class TestTriage:
    def test_confidence_ordering(self):
        prog = compile_c("""
            void doomedfn(int *p) { p = NULL; *p = 1; }
            void inconsistent(int *r) { *r = 1; if (r != NULL) { *r = 2; } }
            struct twoints { int a; int b; };
            int static_returns_t(void);
            void abstract_only(void) {
              struct twoints *data = NULL;
              data = (struct twoints *)calloc(8, sizeof(struct twoints));
              if (static_returns_t()) { data[0].a = 1; }
              else { if (data != NULL) { data[0].a = 1; } else { } }
            }
        """)
        rep = triage_program(prog)
        levels = [w.confidence for w in rep.warnings]
        assert levels == sorted(
            levels, key=["DOOMED", "HIGH", "MEDIUM", "LOW"].index)
        assert rep.by_confidence("DOOMED")[0].proc_name == "doomedfn"
        assert any(w.proc_name == "inconsistent"
                   for w in rep.by_confidence("HIGH"))
        assert any(w.proc_name == "abstract_only"
                   for w in rep.by_confidence("MEDIUM"))

    def test_doomed_absorbs_config_tags(self):
        prog = compile_c("void d(int *p) { p = NULL; *p = 1; }")
        rep = triage_program(prog)
        w = rep.warnings[0]
        assert w.confidence == "DOOMED"
        assert "Conc" in w.configs  # also found by the configurations


class TestSemanticSimplification:
    def _oracle(self, src, name):
        prog = typecheck(parse_program(src))
        proc = prepare_procedure(prog, prog.proc(name))
        enc = EncodedProcedure(prog, proc)
        preds = mine_predicates(prog, proc)
        return DeadFailOracle(enc, preds)

    def test_figure1_spec_prints_as_paper(self):
        prog = typecheck(parse_program("""
            var Freed: [int]int;
            procedure Foo(c: int, buf: int, cmd: int) modifies Freed;
            {
              if (*) {
                A1: assert Freed[c] == 0;  Freed[c] := 1;
                A2: assert Freed[buf] == 0; Freed[buf] := 1;
                return;
              }
              if (cmd == 0) {
                if (*) {
                  A3: assert Freed[c] == 0;  Freed[c] := 1;
                  A4: assert Freed[buf] == 0; Freed[buf] := 1;
                }
              }
              A5: assert Freed[c] == 0;  Freed[c] := 1;
              A6: assert Freed[buf] == 0; Freed[buf] := 1;
            }
        """))
        res = find_abstract_sibs(prog, "Foo", config=CONC)
        assert res.specs == \
            ["(!(buf == c) && 0 == Freed[buf] && 0 == Freed[c])"]

    def test_simplification_preserves_semantics(self):
        oracle = self._oracle("""
            procedure P(x: int, y: int) {
              A1: assert x != 0;
              if (y == 0) { A2: assert y == 0; }
            }
        """, "P")
        from repro.core.cover import predicate_cover
        cover = predicate_cover(oracle)
        simplified = oracle.simplify_clauses(cover)
        # same Dead and Fail sets
        assert oracle.fail_set(cover) == oracle.fail_set(simplified)
        assert oracle.dead_set(cover) == oracle.dead_set(simplified)
        assert len(simplified) <= len(cover)

    def test_empty_set_passthrough(self):
        oracle = self._oracle(
            "procedure P(x: int) { A: assert x != 0; }", "P")
        assert oracle.simplify_clauses(frozenset()) == frozenset()
