"""Clause-set machinery tests: formulas, normalization (§4.3 rules),
pruning, and maximal-clause helpers."""

from repro.core.clauses import (all_maximal_clauses, clause_formula,
                                clause_set_formula, is_tautology,
                                maximal_clause_from_model, normalize,
                                prune_clauses)
from repro.lang.ast import BoolLit, IntLit, NotExpr, OrExpr, RelExpr, VarExpr
from repro.lang.pretty import pp_formula

P = [RelExpr("==", VarExpr("x"), IntLit(0)),
     RelExpr("==", VarExpr("y"), IntLit(0)),
     RelExpr("<", VarExpr("x"), VarExpr("y"))]


class TestFormulas:
    def test_singleton_positive(self):
        assert pp_formula(clause_formula(frozenset({1}), P)) == "x == 0"

    def test_singleton_negative(self):
        assert pp_formula(clause_formula(frozenset({-1}), P)) == "!(x == 0)"

    def test_disjunction_ordered(self):
        f = clause_formula(frozenset({2, -1}), P)
        assert isinstance(f, OrExpr)

    def test_empty_clause_set_is_true(self):
        assert clause_set_formula(frozenset(), P) == BoolLit(True)

    def test_conjunction_of_clauses(self):
        cs = frozenset({frozenset({1}), frozenset({2})})
        out = pp_formula(clause_set_formula(cs, P))
        assert "x == 0" in out and "y == 0" in out


class TestModelNegation:
    def test_negates_assignment(self):
        # model: p1=True, p2=False -> clause (!p1 | p2)
        clause = maximal_clause_from_model({10: True, 11: False},
                                           {10: 1, 11: 2})
        assert clause == frozenset({-1, 2})


class TestNormalize:
    def test_paper_example_resolution(self):
        # (a | b) & (a | !b) simplifies to (a)  — §4.3's motivating case
        cs = frozenset({frozenset({1, 2}), frozenset({1, -2})})
        assert normalize(cs) == frozenset({frozenset({1})})

    def test_subsumption(self):
        cs = frozenset({frozenset({1}), frozenset({1, 2})})
        assert normalize(cs) == frozenset({frozenset({1})})

    def test_tautology_removed(self):
        cs = frozenset({frozenset({1, -1, 2}), frozenset({2})})
        assert normalize(cs) == frozenset({frozenset({2})})

    def test_full_maximal_cover_collapses_to_false(self):
        # all four maximal clauses over {p1, p2} denote false; resolution
        # derives the empty clause and subsumption leaves exactly it
        cs = frozenset(all_maximal_clauses(2))
        assert normalize(cs) == frozenset({frozenset()})

    def test_empty_input(self):
        assert normalize(frozenset()) == frozenset()

    def test_idempotent(self):
        cs = frozenset({frozenset({1, 2}), frozenset({1, -2}),
                        frozenset({3, 1})})
        once = normalize(cs)
        assert normalize(once) == once

    def test_three_predicate_chain(self):
        # (a|c) & (b|!c) & (a|b) : resolution of first two gives (a|b),
        # already present
        cs = frozenset({frozenset({1, 3}), frozenset({2, -3}),
                        frozenset({1, 2})})
        out = normalize(cs)
        assert frozenset({1, 2}) in out


class TestPrune:
    def test_none_disables(self):
        cs = frozenset({frozenset({1, 2, 3})})
        assert prune_clauses(cs, None) == cs

    def test_k1_keeps_units_only(self):
        cs = frozenset({frozenset({1}), frozenset({1, 2}),
                        frozenset({1, 2, 3})})
        assert prune_clauses(cs, 1) == frozenset({frozenset({1})})

    def test_k2(self):
        cs = frozenset({frozenset({1}), frozenset({1, 2}),
                        frozenset({1, 2, 3})})
        assert prune_clauses(cs, 2) == frozenset({frozenset({1}),
                                                  frozenset({1, 2})})

    def test_pruning_weakens_to_true(self):
        cs = frozenset({frozenset({1, 2})})
        assert prune_clauses(cs, 1) == frozenset()


class TestMaximalClauses:
    def test_count(self):
        assert len(list(all_maximal_clauses(3))) == 8

    def test_zero_preds(self):
        assert list(all_maximal_clauses(0)) == [frozenset()]

    def test_tautology_detection(self):
        assert is_tautology(frozenset({1, -1}))
        assert not is_tautology(frozenset({1, -2}))
