"""The persistent content-addressed analysis cache (repro.core.cache).

Correctness bar: a warm sweep must be *bit-identical* to the cold sweep
that populated the cache (full ``ProcedureReport`` equality — a hit
returns the stored report verbatim); every fingerprinted knob must
change the content address; corruption of any record must degrade to a
miss, never a crash; and a cache shared by ``jobs=2`` workers must give
the same answers as a serial sweep.
"""

import json
from dataclasses import fields, replace

from repro.bench import compile_suite, make_suite
from repro.cli import run as cli_run
from repro.core import (CONC, A1, A2, AnalysisCache, analyze_procedure,
                        analyze_program, conservative_program)
from repro.lang import parse_program, typecheck
from repro.lang.transform import prepare_procedure

# wall-clock fields, excluded only where a result was *recomputed*
# (after corruption); pure warm hits are compared with full equality
_VOLATILE = {"seconds", "phases", "budget_remaining", "solver_stats",
             "queries", "cache_hits", "queries_saved"}


def _stable(reports):
    return [{f.name: getattr(r, f.name) for f in fields(r)
             if f.name not in _VOLATILE} for r in reports]


def _program():
    suite = make_suite("moufilter", scale=0.5)
    return compile_suite(suite), [f.name for f in suite.functions]


SRC = """
var Freed: [int]int;
procedure Foo(c: int)
  modifies Freed;
{
  A1: assert Freed[c] == 0;
  Freed[c] := 1;
  A2: assert Freed[c] == 0;
  Freed[c] := 1;
}
"""


def _small_program():
    return typecheck(parse_program(SRC))


# ----------------------------------------------------------------------
# warm == cold, bit-identically
# ----------------------------------------------------------------------

def test_warm_report_is_bit_identical(tmp_path):
    program, names = _program()
    cold = analyze_program(program, config=CONC, proc_names=names,
                           cache_dir=str(tmp_path))
    warm = analyze_program(program, config=CONC, proc_names=names,
                           cache_dir=str(tmp_path))
    # full dataclass equality, wall-clock fields included: hits return
    # the stored report verbatim
    assert warm.reports == cold.reports
    assert cold.cache_stats["misses"] == len(names)
    assert cold.cache_stats["stores"] == len(names)
    assert warm.cache_stats["hits"] == len(names)
    assert warm.cache_stats["misses"] == 0


def test_warm_matches_uncached_on_stable_fields(tmp_path):
    program, names = _program()
    plain = analyze_program(program, config=A2, proc_names=names)
    analyze_program(program, config=A2, proc_names=names,
                    cache_dir=str(tmp_path))
    warm = analyze_program(program, config=A2, proc_names=names,
                           cache_dir=str(tmp_path))
    assert _stable(warm.reports) == _stable(plain.reports)


def test_cache_off_by_default(tmp_path):
    program, names = _program()
    report = analyze_program(program, config=CONC, proc_names=names)
    assert report.cache_stats == {}
    assert list(tmp_path.iterdir()) == []


# ----------------------------------------------------------------------
# content address sensitivity
# ----------------------------------------------------------------------

def _key(cache, program, name, config=CONC, prune_k=None, unroll_depth=2,
         max_preds=12, dead_through_failures=True):
    prepared = prepare_procedure(program, program.proc(name),
                                 havoc_returns=config.havoc_returns,
                                 unroll_depth=unroll_depth)
    return cache.analysis_key(program, prepared, config=config,
                              prune_k=prune_k, unroll_depth=unroll_depth,
                              max_preds=max_preds,
                              dead_through_failures=dead_through_failures)


def test_key_is_deterministic(tmp_path):
    cache = AnalysisCache(tmp_path)
    program = _small_program()
    assert _key(cache, program, "Foo") == _key(cache, program, "Foo")


def test_every_fingerprint_knob_changes_the_key(tmp_path):
    cache = AnalysisCache(tmp_path)
    program = _small_program()
    base = _key(cache, program, "Foo")
    variants = [
        _key(cache, program, "Foo", config=A1),   # ignore_conditionals
        _key(cache, program, "Foo", config=A2),   # + havoc_returns
        _key(cache, program, "Foo", prune_k=2),
        _key(cache, program, "Foo", unroll_depth=3),
        _key(cache, program, "Foo", max_preds=6),
        _key(cache, program, "Foo", dead_through_failures=False),
    ]
    assert len({base, *variants}) == len(variants) + 1


def test_source_change_changes_the_key(tmp_path):
    cache = AnalysisCache(tmp_path)
    program = _small_program()
    edited = typecheck(parse_program(SRC.replace("== 0", "== 1")))
    assert _key(cache, program, "Foo") != _key(cache, edited, "Foo")


def test_budgets_are_not_part_of_the_key(tmp_path):
    # timeout / lia_budget are outside the content address: a result
    # computed under one budget is served under any other
    program = _small_program()
    cache = AnalysisCache(tmp_path)
    cold = analyze_procedure(program, "Foo", timeout=10.0, cache=cache)
    warm = analyze_procedure(program, "Foo", timeout=99.0, cache=cache)
    assert warm == cold
    assert cache.hits == 1


def test_timed_out_analyses_are_never_cached(tmp_path):
    program, names = _program()
    report = analyze_program(program, config=CONC, proc_names=names,
                             timeout=0.0, cache_dir=str(tmp_path))
    # a born-expired budget raises before every solver query; only
    # procedures needing zero queries can complete (and may be stored)
    n_timed = sum(1 for r in report.reports if r.timed_out)
    assert n_timed > 0
    assert report.cache_stats["stores"] == len(names) - n_timed
    assert len(list(tmp_path.iterdir())) == len(names) - n_timed


# ----------------------------------------------------------------------
# corruption tolerance
# ----------------------------------------------------------------------

def _corrupt_each(tmp_path, payload):
    records = sorted(tmp_path.glob("*.json"))
    assert records
    for rec in records:
        rec.write_bytes(payload if isinstance(payload, bytes)
                        else payload(rec))
    return len(records)


def _assert_recovers(tmp_path, cold, n_bad):
    program, names = _program()
    warm = analyze_program(program, config=CONC, proc_names=names,
                           cache_dir=str(tmp_path))
    assert _stable(warm.reports) == _stable(cold.reports)
    assert warm.cache_stats["invalidations"] == n_bad
    assert warm.cache_stats["stores"] == n_bad  # bad records re-stored
    # ... and the restored records serve verbatim again
    warm2 = analyze_program(program, config=CONC, proc_names=names,
                            cache_dir=str(tmp_path))
    assert warm2.reports == warm.reports
    assert warm2.cache_stats["hits"] == len(names)


def test_truncated_record_is_a_miss(tmp_path):
    program, names = _program()
    cold = analyze_program(program, config=CONC, proc_names=names,
                           cache_dir=str(tmp_path))
    n = _corrupt_each(tmp_path, lambda p: p.read_bytes()[:10])
    _assert_recovers(tmp_path, cold, n)


def test_garbage_record_is_a_miss(tmp_path):
    program, names = _program()
    cold = analyze_program(program, config=CONC, proc_names=names,
                           cache_dir=str(tmp_path))
    n = _corrupt_each(tmp_path, b"{not json at all")
    _assert_recovers(tmp_path, cold, n)


def test_empty_record_is_a_miss(tmp_path):
    program, names = _program()
    cold = analyze_program(program, config=CONC, proc_names=names,
                           cache_dir=str(tmp_path))
    n = _corrupt_each(tmp_path, b"")
    _assert_recovers(tmp_path, cold, n)


def test_wrong_schema_version_is_a_miss(tmp_path):
    program, names = _program()
    cold = analyze_program(program, config=CONC, proc_names=names,
                           cache_dir=str(tmp_path))

    def bump(path):
        rec = json.loads(path.read_text())
        rec["schema"] = rec["schema"] + 1
        return json.dumps(rec).encode()

    n = _corrupt_each(tmp_path, bump)
    _assert_recovers(tmp_path, cold, n)


def test_unknown_report_field_is_a_miss(tmp_path):
    # a record written by a *newer* schema that forgot to bump: the
    # reconstruction fails and degrades to a miss
    program, names = _program()
    cold = analyze_program(program, config=CONC, proc_names=names,
                           cache_dir=str(tmp_path))

    def extend(path):
        rec = json.loads(path.read_text())
        rec["report"]["from_the_future"] = 1
        return json.dumps(rec).encode()

    n = _corrupt_each(tmp_path, extend)
    _assert_recovers(tmp_path, cold, n)


# ----------------------------------------------------------------------
# shared cache under jobs > 1
# ----------------------------------------------------------------------

def test_parallel_shared_cache_equals_serial(tmp_path):
    program, names = _program()
    serial = analyze_program(program, config=CONC, proc_names=names)
    parallel = analyze_program(program, config=CONC, proc_names=names,
                               jobs=2, cache_dir=str(tmp_path))
    assert _stable(parallel.reports) == _stable(serial.reports)
    assert parallel.cache_stats["stores"] == len(names)
    warm = analyze_program(program, config=CONC, proc_names=names,
                           jobs=2, cache_dir=str(tmp_path))
    assert warm.reports == parallel.reports
    assert warm.cache_stats["hits"] == len(names)


def test_parallel_conservative_shared_cache(tmp_path):
    program, names = _program()
    serial = conservative_program(program, proc_names=names)
    stats: dict = {}
    parallel = conservative_program(program, proc_names=names, jobs=2,
                                    cache_dir=str(tmp_path),
                                    cache_stats_out=stats)
    assert parallel == serial
    assert stats["stores"] == len(names)
    warm_stats: dict = {}
    warm = conservative_program(program, proc_names=names, jobs=2,
                                cache_dir=str(tmp_path),
                                cache_stats_out=warm_stats)
    assert warm == serial
    assert warm_stats["hits"] == len(names)


# ----------------------------------------------------------------------
# plumbing
# ----------------------------------------------------------------------

def test_open_coerces_paths_and_instances(tmp_path):
    assert AnalysisCache.open(None) is None
    cache = AnalysisCache.open(str(tmp_path))
    assert isinstance(cache, AnalysisCache)
    assert AnalysisCache.open(cache) is cache


def test_config_replace_shares_nothing(tmp_path):
    # paranoia: AbstractionConfig is frozen dataclass-style; replacing a
    # knob must produce a distinct key (guards against key derivation
    # reading the wrong object)
    cache = AnalysisCache(tmp_path)
    program = _small_program()
    tweaked = replace(CONC, ignore_conditionals=True)
    assert _key(cache, program, "Foo") != \
        _key(cache, program, "Foo", config=tweaked)


def test_cli_cache_dir_roundtrip(tmp_path, capsys):
    src = tmp_path / "t.bpl"
    src.write_text(SRC)
    cache = tmp_path / "cache"
    rc1 = cli_run(["--cache-dir", str(cache), str(src)])
    out1 = capsys.readouterr().out
    assert list(cache.iterdir())
    rc2 = cli_run(["--cache-dir", str(cache), str(src)])
    out2 = capsys.readouterr().out
    assert (rc1, out1) == (rc2, out2)


def test_cli_no_cache_disables(tmp_path, capsys):
    src = tmp_path / "t.bpl"
    src.write_text(SRC)
    cache = tmp_path / "cache"
    cli_run(["--cache-dir", str(cache), "--no-cache", str(src)])
    capsys.readouterr()
    assert not cache.exists()
