"""Property tests for the clause machinery: §4.3's Normalize preserves
propositional semantics exactly; PruneClauses only ever weakens."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.clauses import (is_tautology, normalize, prune_clauses)


@st.composite
def clause_sets(draw):
    nq = draw(st.integers(1, 4))
    n_clauses = draw(st.integers(0, 6))
    out = set()
    for _ in range(n_clauses):
        width = draw(st.integers(1, nq))
        lits = set()
        for _ in range(width):
            v = draw(st.integers(1, nq))
            lits.add(v if draw(st.booleans()) else -v)
        out.add(frozenset(lits))
    return nq, frozenset(out)


def models_of(nq: int, clauses) -> set:
    out = set()
    for bits in itertools.product([False, True], repeat=nq):
        def val(lit):
            b = bits[abs(lit) - 1]
            return b if lit > 0 else not b
        if all(any(val(l) for l in c) for c in clauses):
            out.add(bits)
    return out


class TestNormalizeProperties:
    @given(clause_sets())
    @settings(max_examples=300, deadline=None)
    def test_normalize_preserves_models(self, inst):
        nq, clauses = inst
        assert models_of(nq, clauses) == models_of(nq, normalize(clauses))

    @given(clause_sets())
    @settings(max_examples=200, deadline=None)
    def test_normalize_never_widens_clauses(self, inst):
        # resolution may *add* clauses (resolvents whose parents are not
        # subsumed), but never one wider than the widest input clause
        nq, clauses = inst
        widths = [len(c) for c in clauses if not is_tautology(c)]
        if not widths:
            return
        assert all(len(c) <= max(widths) for c in normalize(clauses))

    @given(clause_sets())
    @settings(max_examples=200, deadline=None)
    def test_normalize_output_has_no_tautologies_or_subsumed(self, inst):
        nq, clauses = inst
        out = normalize(clauses)
        for c in out:
            assert not is_tautology(c)
            assert not any(d < c for d in out)

    @given(clause_sets())
    @settings(max_examples=150, deadline=None)
    def test_normalize_idempotent(self, inst):
        nq, clauses = inst
        once = normalize(clauses)
        assert normalize(once) == once


class TestPruneProperties:
    @given(clause_sets(), st.integers(1, 4))
    @settings(max_examples=200, deadline=None)
    def test_pruning_only_weakens(self, inst, k):
        nq, clauses = inst
        pruned = prune_clauses(clauses, k)
        assert models_of(nq, clauses) <= models_of(nq, pruned)

    @given(clause_sets())
    @settings(max_examples=100, deadline=None)
    def test_pruning_monotone_in_k(self, inst):
        nq, clauses = inst
        m_prev = None
        for k in (3, 2, 1):
            m = models_of(nq, prune_clauses(clauses, k))
            if m_prev is not None:
                assert m_prev <= m  # smaller k = weaker spec = more models
            m_prev = m
