"""Command-line driver tests."""

import io

import pytest

from repro.cli import run


FIG1_BPL = """
var Freed: [int]int;
procedure Foo(c: int, buf: int, cmd: int) modifies Freed;
{
  if (*) {
    A1: assert Freed[c] == 0;  Freed[c] := 1;
    A2: assert Freed[buf] == 0; Freed[buf] := 1;
    return;
  }
  if (cmd == 0) {
    if (*) {
      A3: assert Freed[c] == 0;  Freed[c] := 1;
      A4: assert Freed[buf] == 0; Freed[buf] := 1;
    }
  }
  A5: assert Freed[c] == 0;  Freed[c] := 1;
  A6: assert Freed[buf] == 0; Freed[buf] := 1;
}
"""

FIG2_C = """
struct twoints { int a; int b; };
int static_returns_t(void);
void Bar(void) {
  struct twoints *data = NULL;
  data = (struct twoints *)calloc(100, sizeof(struct twoints));
  if (static_returns_t()) { data[0].a = 1; }
  else { if (data != NULL) { data[0].a = 1; } else { } }
}
"""


@pytest.fixture()
def fig1_file(tmp_path):
    p = tmp_path / "fig1.bpl"
    p.write_text(FIG1_BPL)
    return str(p)


@pytest.fixture()
def fig2_file(tmp_path):
    p = tmp_path / "fig2.c"
    p.write_text(FIG2_C)
    return str(p)


class TestCli:
    def test_boogie_mode_finds_bug(self, fig1_file):
        out = io.StringIO()
        code = run([fig1_file], out=out)
        text = out.getvalue()
        assert code == 1  # warnings found
        assert "Foo [Conc]: SIB" in text
        assert "WARNING A5" in text
        assert "A6" not in text.replace("A6]", "")  # only A5 warned

    def test_show_cons(self, fig1_file):
        out = io.StringIO()
        run(["--show-cons", fig1_file], out=out)
        assert "conservative warnings: A1, A2, A3, A4, A5, A6" in out.getvalue()

    def test_c_mode_with_configs(self, fig2_file):
        out = io.StringIO()
        code = run(["--c", "--config", "Conc", "--config", "A1", fig2_file],
                   out=out)
        text = out.getvalue()
        assert code == 1
        assert "Bar [Conc]: MAYBUG" in text
        assert "Bar [A1]: SIB" in text
        assert "WARNING deref$1" in text

    def test_prune_k_flag(self, fig2_file):
        out = io.StringIO()
        code = run(["--c", "--prune-k", "1", fig2_file], out=out)
        assert code == 1
        assert "k=1" in out.getvalue()

    def test_clean_program_exits_zero(self, tmp_path):
        p = tmp_path / "ok.bpl"
        p.write_text("procedure P(x: int) { assume x > 0; assert x > 0; }")
        out = io.StringIO()
        assert run([str(p)], out=out) == 0
        assert "CORRECT" in out.getvalue()

    def test_proc_filter(self, fig1_file):
        out = io.StringIO()
        assert run(["--proc", "Foo", fig1_file], out=out) == 1
        out2 = io.StringIO()
        assert run(["--proc", "Nope", fig1_file], out=out2) == 2

    def test_missing_file(self):
        assert run(["/nonexistent/x.bpl"]) == 2

    def test_parse_error_reported(self, tmp_path):
        p = tmp_path / "bad.bpl"
        p.write_text("procedure {")
        assert run([str(p)]) == 2

    def test_bad_config_rejected(self, fig1_file):
        with pytest.raises(SystemExit):
            run(["--config", "Zmax", fig1_file])

    def test_triage_mode(self, tmp_path):
        p = tmp_path / "t.c"
        p.write_text("""
            void doomedfn(int *p) { p = NULL; *p = 1; }
            void inconsistent(int *r) { *r = 1; if (r != NULL) { *r = 2; } }
        """)
        out = io.StringIO()
        code = run(["--c", "--triage", str(p)], out=out)
        text = out.getvalue()
        assert code == 1
        assert "[DOOMED]" in text and "[HIGH" in text
        assert text.index("DOOMED") < text.index("HIGH")
