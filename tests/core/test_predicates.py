"""Predicate mining tests: the Preds transformer rules (§4.4.1), write
elimination, ite lifting, the abstraction knobs, and the paper's worked
examples."""

from repro.core.predicates import (atoms, canon_atom, drop, lift_ites,
                                   mine_predicates, preds,
                                   write_elim_expr, write_elim_formula)
from repro.lang.ast import (AssertStmt, AssignStmt, AssumeStmt, HavocStmt,
                            IfStmt, IntLit, IteExpr, MapAssignStmt,
                            PredAppExpr, RelExpr, SelectExpr, SkipStmt,
                            StoreExpr, VarExpr, seq)
from repro.lang.parser import parse_program
from repro.lang.pretty import pp_formula
from repro.lang.transform import prepare_procedure
from repro.lang.typecheck import typecheck


def rel(op, a, b):
    return RelExpr(op, a, b)


X, Y = VarExpr("x"), VarExpr("y")
ZERO = IntLit(0)


class TestPredsRules:
    def test_skip_identity(self):
        q = frozenset({rel("==", X, ZERO)})
        assert preds(SkipStmt(), q) == q

    def test_assume_assert_add_atoms(self):
        q0 = frozenset()
        a = rel("<", X, Y)
        assert preds(AssumeStmt(a), q0) == {canon_atom(a)}
        assert preds(AssertStmt(a), q0) == {canon_atom(a)}

    def test_assign_substitutes(self):
        # Preds(x := y + 1, {x == 0}) = {y + 1 == 0}
        q = frozenset({rel("==", X, ZERO)})
        from repro.lang.ast import BinExpr
        out = preds(AssignStmt("x", BinExpr("+", Y, IntLit(1))), q)
        assert len(out) == 1
        rendered = pp_formula(next(iter(out)))
        assert "y + 1" in rendered

    def test_havoc_drops(self):
        q = frozenset({canon_atom(rel("==", X, ZERO)),
                       canon_atom(rel("==", Y, ZERO))})
        out = preds(HavocStmt(("x",)), q)
        assert out == {canon_atom(rel("==", Y, ZERO))}

    def test_seq_right_to_left(self):
        # x := y; assert x == 0  ==> atom y == 0 at entry
        body = seq(AssignStmt("x", Y), AssertStmt(rel("==", X, ZERO)))
        out = preds(body, frozenset())
        assert out == {canon_atom(rel("==", Y, ZERO))}

    def test_if_adds_condition_atoms(self):
        s = IfStmt(rel("<", X, Y), SkipStmt(), SkipStmt())
        out = preds(s, frozenset())
        assert out == {canon_atom(rel("<", X, Y))}

    def test_ignore_conditionals_drops_condition(self):
        s = IfStmt(rel("<", X, Y),
                   AssertStmt(rel("==", X, ZERO)), SkipStmt())
        out = preds(s, frozenset(), ignore_conditionals=True)
        assert out == {canon_atom(rel("==", X, ZERO))}

    def test_nondet_if_no_condition_atoms(self):
        s = IfStmt(None, AssertStmt(rel("==", X, ZERO)), SkipStmt())
        out = preds(s, frozenset())
        assert out == {canon_atom(rel("==", X, ZERO))}

    def test_map_assign_substitutes_store(self):
        # M[x] := 1; assert M[y] == 0   ==>  atoms {x == y, M[y] == 0}
        # (write elimination makes the alias condition visible)
        M = VarExpr("M")
        body = seq(MapAssignStmt("M", X, IntLit(1)),
                   AssertStmt(rel("==", SelectExpr(M, Y), ZERO)))
        out = preds(body, frozenset())
        rendered = sorted(pp_formula(a) for a in out)
        assert any("x" in r and "y" in r and "==" in r for r in rendered)
        assert any("M[y]" in r for r in rendered)
        # note: the written value 1 == 0 folds away as trivially false? it
        # stays as a (constant-free) atom only if non-trivial; 1 == 0 has
        # no variables and is filtered later by the entry filter
        assert len(out) >= 2


class TestWriteElimination:
    def test_same_var_index(self):
        M = VarExpr("M")
        e = SelectExpr(StoreExpr(M, X, IntLit(5)), X)
        assert write_elim_expr(e) == IntLit(5)

    def test_different_index_becomes_ite(self):
        M = VarExpr("M")
        e = SelectExpr(StoreExpr(M, X, IntLit(5)), Y)
        out = write_elim_expr(e)
        assert isinstance(out, IteExpr)

    def test_store_chain(self):
        M = VarExpr("M")
        chain = StoreExpr(StoreExpr(M, X, IntLit(1)), Y, IntLit(2))
        out = write_elim_expr(SelectExpr(chain, VarExpr("z")))
        assert isinstance(out, IteExpr)
        assert isinstance(out.els, IteExpr)

    def test_formula_level(self):
        M = VarExpr("M")
        f = rel("==", SelectExpr(StoreExpr(M, X, IntLit(1)), Y), ZERO)
        out = write_elim_formula(f)
        assert isinstance(out.lhs, IteExpr)


class TestLiftItes:
    def test_paper_441_example(self):
        # p(read(write(x,e1,e2),e3), e4) -> atoms {e1 == e3, p(e2,e4),
        # p(read(x,e3),e4)}  (§4.4.1)
        Mx = VarExpr("Mx")
        e1, e2, e3, e4 = (VarExpr(n) for n in ("e1", "e2", "e3", "e4"))
        f = PredAppExpr("p", (SelectExpr(StoreExpr(Mx, e1, e2), e3), e4))
        out = atoms(f)
        rendered = sorted(pp_formula(a) for a in out)
        assert len(out) == 3
        assert any("e1" in r and "e3" in r and "==" in r for r in rendered)
        assert any(r == "p(e2, e4)" for r in rendered)
        assert any("Mx[e3]" in r for r in rendered)

    def test_plain_atom_unchanged(self):
        f = rel("<", X, Y)
        assert lift_ites(f) is f

    def test_nested_ite(self):
        ite = IteExpr(rel("==", X, ZERO), IntLit(1), IntLit(2))
        f = rel("<", ite, Y)
        out = lift_ites(f)
        collected = atoms(out)
        assert canon_atom(rel("==", X, ZERO)) in collected


class TestCanonAtom:
    def test_ne_becomes_eq(self):
        assert canon_atom(rel("!=", X, ZERO)) == canon_atom(rel("==", X, ZERO))

    def test_gt_becomes_lt_swapped(self):
        assert canon_atom(rel(">", X, Y)) == rel("<", Y, X)

    def test_ge_becomes_le_swapped(self):
        assert canon_atom(rel(">=", X, Y)) == rel("<=", Y, X)

    def test_eq_operand_order_deterministic(self):
        assert canon_atom(rel("==", X, Y)) == canon_atom(rel("==", Y, X))


class TestMineFigure1:
    def test_figure1_vocabulary(self):
        prog = typecheck(parse_program("""
            var Freed: [int]int;
            procedure Foo(c: int, buf: int, cmd: int) modifies Freed;
            {
              if (*) {
                assert Freed[c] == 0;  Freed[c] := 1;
                assert Freed[buf] == 0; Freed[buf] := 1;
                return;
              }
              if (cmd == 0) {
                if (*) {
                  assert Freed[c] == 0;  Freed[c] := 1;
                  assert Freed[buf] == 0; Freed[buf] := 1;
                }
              }
              assert Freed[c] == 0;  Freed[c] := 1;
              assert Freed[buf] == 0; Freed[buf] := 1;
            }
        """))
        proc = prepare_procedure(prog, prog.proc("Foo"))
        q = mine_predicates(prog, proc)
        rendered = sorted(pp_formula(a) for a in q)
        # the paper's Q: {!Freed[c], !Freed[buf], cmd == READ, c == buf}
        assert len(q) == 4
        assert any("Freed[c]" in r for r in rendered)
        assert any("Freed[buf]" in r for r in rendered)
        assert any("cmd" in r for r in rendered)
        assert any("buf" in r and "c" in r and "Freed" not in r
                   for r in rendered)

    def test_ignore_conditionals_shrinks_q(self):
        prog = typecheck(parse_program("""
            procedure P(c1: int, x: int) {
              if (c1 == 0) {
                assert x != 0;
              }
            }
        """))
        proc = prepare_procedure(prog, prog.proc("P"))
        q_conc = mine_predicates(prog, proc, ignore_conditionals=False)
        q_a1 = mine_predicates(prog, proc, ignore_conditionals=True)
        assert len(q_a1) < len(q_conc)
        assert all("c1" not in pp_formula(a) for a in q_a1)

    def test_locals_filtered_from_entry_vocabulary(self):
        prog = typecheck(parse_program("""
            procedure P(x: int) {
              var t: int;
              havoc t;
              assert t != 0;
              assert x != 0;
            }
        """))
        proc = prepare_procedure(prog, prog.proc("P"))
        q = mine_predicates(prog, proc)
        assert all("t" not in pp_formula(a) for a in q)

    def test_lambda_constants_kept(self):
        prog = typecheck(parse_program("""
            procedure E() returns (r: int);
            procedure P() {
              var d: int;
              call d := E();
              assert d != 0;
            }
        """))
        proc = prepare_procedure(prog, prog.proc("P"))
        q = mine_predicates(prog, proc)
        assert len(q) == 1
        assert "lam$" in pp_formula(q[0])

    def test_havoc_returns_empties_q(self):
        prog = typecheck(parse_program("""
            procedure E() returns (r: int);
            procedure P() {
              var d: int;
              call d := E();
              assert d != 0;
            }
        """))
        proc = prepare_procedure(prog, prog.proc("P"), havoc_returns=True)
        q = mine_predicates(prog, proc)
        assert q == []

    def test_max_preds_truncates(self):
        prog = typecheck(parse_program("""
            procedure P(a: int, b: int, c: int, d: int) {
              assert a != 0; assert b != 0; assert c != 0; assert d != 0;
            }
        """))
        proc = prepare_procedure(prog, prog.proc("P"))
        assert len(mine_predicates(prog, proc, max_preds=2)) == 2
        assert len(mine_predicates(prog, proc)) == 4
