"""One raising procedure must become a structured failure entry, not
abort the sweep — the batch twin of the server's error path (both go
through ``repro.core.tasks.run_task``)."""

import multiprocessing

import pytest

from repro.core import CONC, analyze_program, conservative_program
from repro.core.analysis import failure_report
from repro.lang import parse_program, typecheck

TWO_PROCS_BPL = """
procedure good(x: int) returns (r: int)
  ensures r >= x;
{
  r := x + 1;
}

procedure boom(x: int) returns (r: int)
  ensures r >= x;
{
  r := x + 1;
}
"""


@pytest.fixture()
def program():
    return typecheck(parse_program(TWO_PROCS_BPL))


@pytest.fixture()
def exploding_sibs(monkeypatch):
    """Make the SIB search raise for the procedure named ``boom``."""
    import repro.core.analysis as analysis_mod
    real = analysis_mod.find_abstract_sibs

    def fake(program, proc_name, **kwargs):
        if proc_name == "boom":
            raise ValueError("synthetic analysis bug")
        return real(program, proc_name, **kwargs)

    monkeypatch.setattr(analysis_mod, "find_abstract_sibs", fake)


class TestAnalyzeFailureContainment:
    def test_one_raising_proc_does_not_abort_the_sweep(self, program,
                                                       exploding_sibs):
        rep = analyze_program(program, config=CONC,
                              proc_names=["good", "boom"])
        assert [r.proc_name for r in rep.reports] == ["good", "boom"]
        good, boom = rep.reports
        assert not good.failed
        assert good.status is not None
        assert boom.failed
        assert boom.failure == {"type": "ValueError",
                                "message": "synthetic analysis bug"}
        assert rep.n_failures == 1
        assert rep.failed_procs == ["boom"]

    def test_failed_procs_excluded_from_averages(self, program,
                                                 exploding_sibs):
        rep = analyze_program(program, config=CONC,
                              proc_names=["good", "boom"])
        # avg over the one non-failed report, not 2
        assert rep.avg("seconds") == rep.reports[0].seconds

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="monkeypatch only propagates into fork-started workers")
    def test_failure_entries_survive_the_process_pool(self, program,
                                                      exploding_sibs):
        serial = analyze_program(program, config=CONC,
                                 proc_names=["good", "boom"])
        parallel = analyze_program(program, config=CONC,
                                   proc_names=["good", "boom"], jobs=2)
        assert parallel.n_failures == serial.n_failures == 1
        assert parallel.reports[1].failure == serial.reports[1].failure


class TestConservativeFailureContainment:
    def test_cons_collects_failures_out(self, program, exploding_sibs,
                                        monkeypatch):
        import repro.core.checker as checker_mod
        real = checker_mod.check_procedure

        def fake(program, proc_name, **kwargs):
            if proc_name == "boom":
                raise RuntimeError("cons bug")
            return real(program, proc_name, **kwargs)

        # tasks._run_cons imports check_procedure at call time, so
        # patching the checker module is enough.
        monkeypatch.setattr(checker_mod, "check_procedure", fake)
        failures = {}
        warnings, timeouts = conservative_program(
            program, proc_names=["good", "boom"], failures_out=failures)
        assert warnings["boom"] == []
        assert warnings["good"] is not None
        assert failures == {"boom": {"type": "RuntimeError",
                                     "message": "cons bug"}}


def test_failure_report_shape():
    rep = failure_report("p", "Conc", {"type": "KeyError", "message": "k"})
    assert rep.failed and rep.proc_name == "p"
    assert rep.failure == {"type": "KeyError", "message": "k"}
    assert not rep.timed_out
