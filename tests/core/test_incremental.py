"""Incremental CI mode (`repro.core.incremental`): multi-file ingest,
dependency-aware dirty-set planning, manifest round-trips, rename cache
hits, priority scheduling, and the warning delta.

Everything runs on the committed fixture repository
(``tests/fixtures/ci_repo``): Release (spec'd callee, alloc.bpl),
Main (its cross-file caller), Buggy (a genuine SIB) and Clamp (an
isolated leaf)."""

import json
import shutil
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CONC
from repro.core.cache import AnalysisCache
from repro.core.incremental import (load_manifest, plan_increment,
                                    render_delta, run_ci, save_manifest,
                                    warning_delta)
from repro.core.interproc import (call_graph, callers_of, spec_dependents,
                                  spec_fingerprint)
from repro.frontend.ingest import (IngestError, ingest_directory,
                                   merge_programs)
from repro.lang import parse_program, typecheck
from repro.lang.transform import prepare_procedure
from repro.vc.encode import procedure_fingerprint

FIXTURE = Path(__file__).resolve().parents[1] / "fixtures" / "ci_repo"


def make_repo(tmp_path: Path) -> Path:
    repo = tmp_path / "repo"
    shutil.copytree(FIXTURE, repo)
    return repo


def edit(repo: Path, filename: str, old: str, new: str) -> None:
    path = repo / filename
    text = path.read_text()
    assert old in text, f"fixture drifted: {old!r} not in {filename}"
    path.write_text(text.replace(old, new))


# ----------------------------------------------------------------------
# ingest
# ----------------------------------------------------------------------

class TestIngest:
    def test_cross_file_calls_typecheck(self, tmp_path):
        repo = make_repo(tmp_path)
        ingested = ingest_directory(repo)
        assert set(ingested.program.procedures) == {"Release", "Main",
                                                    "Buggy", "Clamp"}
        assert ingested.proc_files["Release"] == "alloc.bpl"
        assert ingested.proc_files["Main"] == "main.bpl"
        assert set(ingested.file_digests) == {"alloc.bpl", "main.bpl",
                                              "buggy.bpl", "util.bpl"}

    def test_duplicate_procedure_is_an_error(self, tmp_path):
        repo = make_repo(tmp_path)
        (repo / "dup.bpl").write_text(
            "procedure Clamp(x: int, lo: int, hi: int) returns (r: int)\n"
            "{ r := x; }\n")
        with pytest.raises(IngestError, match="defined in both"):
            ingest_directory(repo)

    def test_conflicting_global_is_an_error(self, tmp_path):
        a = typecheck(parse_program("var G: int;\nprocedure P(x: int) {}"))
        b = typecheck(parse_program(
            "var G: [int]int;\nprocedure Q(x: int) {}"))
        with pytest.raises(IngestError, match="global 'G'"):
            merge_programs([("a.bpl", a), ("b.bpl", b)])

    def test_empty_directory_is_an_error(self, tmp_path):
        with pytest.raises(IngestError, match="no .bpl or .c sources"):
            ingest_directory(tmp_path)


# ----------------------------------------------------------------------
# the dependency graph
# ----------------------------------------------------------------------

class TestCallGraph:
    def test_edges_and_reverse_edges(self, tmp_path):
        program = ingest_directory(make_repo(tmp_path)).program
        graph = call_graph(program)
        assert graph["Main"] == ("Release",)
        assert graph["Release"] == ()
        assert callers_of(program)["Release"] == ("Main",)

    def test_spec_dependents_is_one_level(self, tmp_path):
        program = ingest_directory(make_repo(tmp_path)).program
        assert spec_dependents(program, {"Release"}) == {"Main"}
        # Main has no callers, so its spec reaches nobody.
        assert spec_dependents(program, {"Main"}) == set()

    def test_spec_fingerprint_ignores_body_and_name(self):
        src = ("procedure P(x: int) returns (r: int)\n"
               "  requires x > 0;\n  ensures r > 0;\n{ r := x; }")
        base = typecheck(parse_program(src)).proc("P")
        rebodied = typecheck(parse_program(
            src.replace("r := x;", "r := x + 1;"))).proc("P")
        renamed = typecheck(parse_program(src.replace("P", "Q"))).proc("Q")
        respecced = typecheck(parse_program(
            src.replace("x > 0", "x > 1"))).proc("P")
        assert spec_fingerprint(base) == spec_fingerprint(rebodied)
        assert spec_fingerprint(base) == spec_fingerprint(renamed)
        assert spec_fingerprint(base) != spec_fingerprint(respecced)


# ----------------------------------------------------------------------
# planning against a manifest
# ----------------------------------------------------------------------

class TestPlanning:
    def test_cold_plan_marks_everything_changed(self, tmp_path):
        ingested = ingest_directory(make_repo(tmp_path))
        plan = plan_increment(ingested, None)
        assert plan.reason == "cold"
        assert set(plan.order) == set(ingested.program.procedures)
        assert all(c == "changed" for c in plan.classes.values())

    def test_config_mismatch_dirties_everything(self, tmp_path):
        repo = make_repo(tmp_path)
        result = run_ci(repo, tmp_path / "m.json")
        rerun = run_ci(repo, tmp_path / "m.json", prune_k=2)
        assert rerun.plan.reason == "config"
        assert len(rerun.plan.order) == 4

    def test_ordering_changed_first_then_slow_first(self, tmp_path):
        repo = make_repo(tmp_path)
        result = run_ci(repo, tmp_path / "m.json")
        previous = result.manifest
        # Fabricate a diff: Buggy and Clamp changed (Clamp historically
        # slower), and a stale spec fingerprint for Release dirtying its
        # caller Main as dependent (Release's own surface is untouched,
        # so Release itself stays clean in this fabricated manifest).
        previous["procedures"]["Buggy"]["surface_fp"] = "stale"
        previous["procedures"]["Buggy"]["wall"] = 0.5
        previous["procedures"]["Clamp"]["surface_fp"] = "stale"
        previous["procedures"]["Clamp"]["wall"] = 9.0
        previous["spec_fps"]["Release"] = "stale"
        ingested = ingest_directory(repo)
        plan = plan_increment(ingested, previous)
        assert plan.classes == {"Buggy": "changed", "Clamp": "changed",
                                "Main": "dependent", "Release": "clean"}
        # rank 0 (changed) before rank 1 (dependent); historically
        # slow first within the rank.
        assert plan.order == ["Clamp", "Buggy", "Main"]
        assert plan.priorities == {"Clamp": 0, "Buggy": 0, "Main": 1}


# ----------------------------------------------------------------------
# full runs: dirty sets, deltas, manifests
# ----------------------------------------------------------------------

class TestRunCi:
    def test_cold_then_idle_rerun(self, tmp_path):
        repo = make_repo(tmp_path)
        manifest = tmp_path / "m.json"
        cold = run_ci(repo, manifest, cache_dir=str(tmp_path / "cache"))
        assert cold.stats["analyzed"] == 4
        assert "Buggy:A5" in cold.delta["high"]["new"]
        idle = run_ci(repo, manifest, cache_dir=str(tmp_path / "cache"))
        assert idle.plan.order == []
        assert idle.stats["analyzed"] == 0
        assert idle.delta["high"]["new"] == []
        assert "Buggy:A5" in idle.delta["high"]["unchanged"]
        again = run_ci(repo, manifest, cache_dir=str(tmp_path / "cache"))
        assert render_delta(idle.delta) == render_delta(again.delta)

    def test_body_edit_dirties_exactly_that_procedure(self, tmp_path):
        repo = make_repo(tmp_path)
        manifest = tmp_path / "m.json"
        run_ci(repo, manifest)
        edit(repo, "alloc.bpl", "  Freed[p] := 1;\n",
             "  Freed[p] := 1;\n  R2: assert Freed[p] == 0;\n")
        rerun = run_ci(repo, manifest)
        assert rerun.plan.order == ["Release"]
        assert rerun.plan.classes["Main"] == "clean"
        assert "Release:R2" in rerun.delta["high"]["new"]

    def test_callee_spec_edit_dirties_direct_caller(self, tmp_path):
        repo = make_repo(tmp_path)
        manifest = tmp_path / "m.json"
        run_ci(repo, manifest)
        edit(repo, "alloc.bpl", "  requires Freed[p] == 0;",
             "  requires Freed[p] == 0;\n  requires p != 0;")
        rerun = run_ci(repo, manifest)
        assert rerun.plan.classes["Release"] == "changed"
        assert rerun.plan.classes["Main"] == "dependent"
        assert set(rerun.plan.order) == {"Release", "Main"}
        assert rerun.plan.order[0] == "Release"  # rank 0 before rank 1
        assert rerun.plan.classes["Buggy"] == "clean"
        assert rerun.plan.classes["Clamp"] == "clean"

    def test_comment_and_whitespace_edits_dirty_nothing(self, tmp_path):
        repo = make_repo(tmp_path)
        manifest = tmp_path / "m.json"
        run_ci(repo, manifest)
        edit(repo, "util.bpl", "  r := x;", "  r    := x;  // init")
        edit(repo, "main.bpl", "procedure Main",
             "// a fresh comment line\nprocedure Main")
        rerun = run_ci(repo, manifest)
        assert rerun.plan.order == []
        assert rerun.plan.counts()["clean"] == 4

    def test_fixed_warning_shows_in_delta(self, tmp_path):
        repo = make_repo(tmp_path)
        manifest = tmp_path / "m.json"
        run_ci(repo, manifest)
        (repo / "buggy.bpl").unlink()
        rerun = run_ci(repo, manifest)
        assert rerun.plan.removed == ["Buggy"]
        assert "Buggy:A5" in rerun.delta["high"]["fixed"]
        assert rerun.delta["high"]["new"] == []


class TestPoolExecution:
    def test_jobs_parallel_matches_serial(self, tmp_path):
        """jobs>1 routes the dirty set through the serve layer's
        priority WorkerPool; results are identical to the serial path
        modulo wall clocks."""
        repo = make_repo(tmp_path)
        serial = run_ci(repo, tmp_path / "m1.json")
        pooled = run_ci(repo, tmp_path / "m2.json", jobs=2)

        def stable(manifest):
            return {n: {k: v for k, v in e.items() if k != "wall"}
                    for n, e in manifest["procedures"].items()}

        assert stable(serial.manifest) == stable(pooled.manifest)
        assert render_delta(serial.delta) == render_delta(pooled.delta)


class TestRenameCacheHit:
    """Satellite regression: a fingerprint-identical procedure under a
    new name (file rename / procedure move) must hit the cache — the
    content address excludes the name."""

    def test_rename_and_move_costs_zero_solver_work(self, tmp_path):
        repo = make_repo(tmp_path)
        manifest = tmp_path / "m.json"
        cache_dir = str(tmp_path / "cache")
        run_ci(repo, manifest, cache_dir=cache_dir)
        # Move Clamp to a new file AND rename it: same content.
        text = (repo / "util.bpl").read_text()
        (repo / "util.bpl").unlink()
        (repo / "clip.bpl").write_text(text.replace("Clamp", "Clip"))
        rerun = run_ci(repo, manifest, cache_dir=cache_dir)
        assert rerun.plan.classes["Clip"] == "renamed"
        assert rerun.plan.renamed_from == {"Clip": "Clamp"}
        assert rerun.plan.order == ["Clip"]
        assert rerun.stats["cache"]["hits"] == 1
        assert rerun.stats["cache"]["misses"] == 0
        assert rerun.stats["queries"] == 0  # all replayed from disk
        # the loaded report carries the *new* name
        assert rerun.reports["Clip"].proc_name == "Clip"
        assert rerun.manifest["procedures"]["Clip"]["file"] == "clip.bpl"

    def test_renamed_warnings_relabel_in_delta(self, tmp_path):
        repo = make_repo(tmp_path)
        manifest = tmp_path / "m.json"
        cache_dir = str(tmp_path / "cache")
        run_ci(repo, manifest, cache_dir=cache_dir)
        text = (repo / "buggy.bpl").read_text()
        (repo / "buggy.bpl").unlink()
        (repo / "nasty.bpl").write_text(text.replace("Buggy", "Nasty"))
        rerun = run_ci(repo, manifest, cache_dir=cache_dir)
        assert rerun.stats["queries"] == 0
        assert "Nasty:A5" in rerun.delta["high"]["new"]
        assert "Buggy:A5" in rerun.delta["high"]["fixed"]


class TestWallPlumbing:
    """Satellite: per-procedure wall timings ride the manifest and the
    cache record, feeding the historically-slow-first heuristic."""

    def test_manifest_records_walls(self, tmp_path):
        repo = make_repo(tmp_path)
        result = run_ci(repo, tmp_path / "m.json")
        walls = {n: e["wall"]
                 for n, e in result.manifest["procedures"].items()}
        assert set(walls) == {"Release", "Main", "Buggy", "Clamp"}
        assert all(w >= 0.0 for w in walls.values())
        assert walls["Buggy"] > 0.0

    def test_cache_records_carry_wall_and_wall_of_reads_it(self, tmp_path):
        repo = make_repo(tmp_path)
        cache_dir = tmp_path / "cache"
        run_ci(repo, tmp_path / "m.json", cache_dir=str(cache_dir))
        records = [json.loads(p.read_text())
                   for p in cache_dir.glob("*.json")]
        assert records and all("wall" in rec for rec in records)
        # wall_of answers from the record without touching hit counters
        program = ingest_directory(repo).program
        cache = AnalysisCache(cache_dir)
        prepared = prepare_procedure(program, program.proc("Buggy"),
                                     havoc_returns=CONC.havoc_returns,
                                     unroll_depth=2)
        key = cache.analysis_key(program, prepared, config=CONC,
                                 prune_k=None, unroll_depth=2, max_preds=12)
        wall = cache.wall_of(key)
        assert isinstance(wall, float) and wall > 0.0
        assert cache.hits == 0 and cache.misses == 0


class TestManifestIO:
    def test_round_trip_and_byte_stability(self, tmp_path):
        repo = make_repo(tmp_path)
        path = tmp_path / "m.json"
        result = run_ci(repo, path)
        first = path.read_bytes()
        loaded = load_manifest(path)
        assert loaded == result.manifest
        save_manifest(path, loaded)
        assert path.read_bytes() == first

    def test_wrong_schema_or_garbage_reads_as_cold(self, tmp_path):
        path = tmp_path / "m.json"
        assert load_manifest(path) is None  # missing
        path.write_text("{not json")
        assert load_manifest(path) is None
        path.write_text(json.dumps({"schema": 999, "procedures": {}}))
        assert load_manifest(path) is None

    def test_delta_against_no_previous_is_all_new(self, tmp_path):
        repo = make_repo(tmp_path)
        result = run_ci(repo, tmp_path / "m.json")
        delta = warning_delta(None, result.manifest)
        assert delta["high"]["unchanged"] == []
        assert "Buggy:A5" in delta["high"]["new"]


# ----------------------------------------------------------------------
# fingerprint stability (the property behind "comments dirty nothing")
# ----------------------------------------------------------------------

_BASE_SRC = (FIXTURE / "alloc.bpl").read_text()
_BASE_PROGRAM = typecheck(parse_program(_BASE_SRC))
_BASE_FPS = {n: procedure_fingerprint(_BASE_PROGRAM, p)
             for n, p in _BASE_PROGRAM.procedures.items()}


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_fingerprints_survive_comment_and_whitespace_noise(data):
    """Random comment lines, trailing comments and indentation noise
    never change any procedure's surface fingerprint — the property
    that makes `plan_increment` classify such edits as clean."""
    lines = _BASE_SRC.splitlines()
    noisy: list[str] = []
    for i, line in enumerate(lines):
        if data.draw(st.booleans(), label=f"comment-before-{i}"):
            noisy.append("// noise %d" % i)
        pad = data.draw(st.integers(min_value=0, max_value=4),
                        label=f"pad-{i}")
        suffix = "  // trail" if data.draw(st.booleans(),
                                           label=f"trail-{i}") else ""
        noisy.append(" " * pad + line + suffix)
    program = typecheck(parse_program("\n".join(noisy)))
    for name, proc in program.procedures.items():
        assert procedure_fingerprint(program, proc) == _BASE_FPS[name]
