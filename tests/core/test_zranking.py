"""Z-ranking baseline tests."""

from repro import compile_c
from repro.core.zranking import (PrecisionAtK, RankedAlarm, precision_at_k,
                                 z_rank)


SRC = """
void safe1(int *p) { if (p != NULL) { *p = 1; } }
void safe2(int *q) { if (q != NULL) { *q = 1; } }
void safe3(int *r) { if (r != NULL) { *r = 1; } }
void envdep(int *s) { *s = 1; }
void doublefree(int *c) {
  if (nondet()) { free(c); return; }
  free(c);
}
"""


class TestZRank:
    def test_only_failing_checks_are_alarms(self):
        prog = compile_c(SRC)
        ranked = z_rank(prog)
        keys = {(a.proc_name, a.label) for a in ranked}
        # the three guarded derefs are proven: no alarm
        assert not any(p.startswith("safe") for p, _ in keys)
        assert ("envdep", "deref$1") in keys

    def test_populations_grouped_by_kind(self):
        prog = compile_c(SRC)
        ranked = z_rank(prog)
        pops = {a.population for a in ranked}
        assert pops <= {"deref", "free", "lock", "unlock", "user"}
        deref = next(a for a in ranked if a.population == "deref")
        # 4 deref checks in the program, 3 proven
        assert deref.checks == 4 and deref.successes == 3

    def test_healthier_population_ranks_first(self):
        prog = compile_c(SRC)
        ranked = z_rank(prog)
        # deref population: 3/4 succeed; free population: 0/2 succeed
        # (both frees fail demonically) -> deref alarms rank above free
        order = [a.population for a in ranked]
        assert order.index("deref") < order.index("free")

    def test_scores_monotone_in_success_rate(self):
        prog = compile_c(SRC)
        by_pop = {}
        for a in z_rank(prog):
            by_pop[a.population] = a
        assert by_pop["deref"].z_score > by_pop["free"].z_score

    def test_deterministic(self):
        prog = compile_c(SRC)
        a = [(x.proc_name, x.label) for x in z_rank(prog)]
        b = [(x.proc_name, x.label) for x in z_rank(prog)]
        assert a == b


class TestPrecisionAtK:
    def test_counts_hits(self):
        ranked = [("f", "a"), ("f", "b"), ("g", "a")]
        labels = {("f", "a"): True, ("f", "b"): False, ("g", "a"): True}
        (p2,) = precision_at_k(ranked, labels, [2])
        assert p2.hits == 1
        assert p2.precision == 0.5

    def test_unlabeled_alarms_are_misses(self):
        ranked = [("f", "a"), ("x", "zz")]
        labels = {("f", "a"): True}
        (p,) = precision_at_k(ranked, labels, [2])
        assert p.hits == 1

    def test_k_zero(self):
        (p,) = precision_at_k([], {}, [0])
        assert p.precision == 0.0
