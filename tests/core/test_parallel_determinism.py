"""`--parallel-query` is a pure performance knob: the same analysis with
the flag on and off (and across repeated parallel runs, which may have
different race winners) must produce byte-identical reports, and every
certificate produced under the parallel mode must still be accepted.

Worker processes are real, so the corpus slice here is small and the
fleet stays at 2 workers.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.cli import run
from repro.core.analysis import analyze_program, program_report_to_json
from repro.core.deadfail import clear_baseline_cache
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck
from repro.smt.parallel import ParallelConfig

CORPUS = sorted(
    (Path(__file__).resolve().parent.parent / "corpus").glob("*.bpl"))

#: everything races: no admission floor, zero-budget probe
RACE_ALL = ParallelConfig(workers=2, probe_conflicts=0, min_clauses=0)

#: wall-clock / machine-local report fields that legitimately differ
#: between runs (certificates counts proof *steps*, which depend on the
#: search path and the race winner)
_VOLATILE = {"seconds", "phases", "budget_remaining", "solver_stats",
             "queries", "cache_hits", "queries_saved", "certificates"}


def _report_bytes(program, parallel) -> bytes:
    clear_baseline_cache()
    rep = analyze_program(program, timeout=None, max_preds=5,
                          parallel=parallel, self_check=True)
    data = program_report_to_json(rep)
    for rd in data["reports"]:
        for key in _VOLATILE:
            rd.pop(key, None)
    return json.dumps(data, sort_keys=True).encode()


@pytest.mark.parametrize("path", CORPUS[:3], ids=lambda p: p.stem)
def test_parallel_reports_are_byte_identical_to_sequential(path):
    program = typecheck(parse_program(path.read_text()))
    sequential = _report_bytes(program, None)
    # repeated parallel runs may crown different winners; the report
    # bytes must not move, and self_check above demands every
    # certificate (worker-produced included) is accepted
    assert _report_bytes(program, RACE_ALL) == sequential
    assert _report_bytes(program, RACE_ALL) == sequential


def test_parallel_cli_output_is_byte_identical(tmp_path):
    src = """
var Freed: [int]int;
procedure Foo(c: int, buf: int, cmd: int) modifies Freed;
{
  if (*) {
    A1: assert Freed[c] == 0;  Freed[c] := 1;
    A2: assert Freed[buf] == 0; Freed[buf] := 1;
    return;
  }
  if (cmd == 0) {
    if (*) {
      A3: assert Freed[c] == 0;  Freed[c] := 1;
      A4: assert Freed[buf] == 0; Freed[buf] := 1;
    }
  }
  A5: assert Freed[c] == 0;  Freed[c] := 1;
  A6: assert Freed[buf] == 0; Freed[buf] := 1;
}
"""
    p = tmp_path / "fig1.bpl"
    p.write_text(src)

    def run_cli(*extra):
        clear_baseline_cache()
        out = io.StringIO()
        # generous budget: worker-fleet spawns cost seconds on a loaded
        # machine and must not tip either arm into TIMEOUT rows
        code = run([*extra, "--self-check", "--timeout", "120", str(p)],
                   out=out)
        return code, out.getvalue()

    code_seq, text_seq = run_cli()
    code_par, text_par = run_cli("--parallel-query", "auto:2")
    assert (code_par, text_par) == (code_seq, text_seq)
    assert "WARNING" in text_seq


def test_cli_rejects_bad_parallel_spec(tmp_path):
    p = tmp_path / "t.bpl"
    p.write_text("procedure P(x: int) { A: assert x != 0; }")
    assert run(["--parallel-query", "bogus", str(p)], out=io.StringIO()) == 2
