"""Dead/Fail oracle and predicate-cover tests."""

import pytest

from repro.core.clauses import all_maximal_clauses
from repro.core.cover import predicate_cover
from repro.core.deadfail import AnalysisTimeout, Budget, DeadFailOracle
from repro.core.predicates import mine_predicates
from repro.lang.ast import TRUE, IntLit, RelExpr, VarExpr
from repro.lang.parser import parse_program
from repro.lang.transform import prepare_procedure
from repro.lang.typecheck import typecheck
from repro.vc.encode import EncodedProcedure


def setup(src: str, name: str | None = None, preds=None, **mine_kw):
    prog = typecheck(parse_program(src))
    pname = name or next(n for n, p in prog.procedures.items()
                         if p.body is not None)
    proc = prepare_procedure(prog, prog.proc(pname))
    enc = EncodedProcedure(prog, proc)
    if preds is None:
        preds = mine_predicates(prog, proc, **mine_kw)
    return DeadFailOracle(enc, preds)


class TestConservative:
    def test_fail_true_reports_unprovable(self):
        oracle = setup("""
            procedure P(x: int) {
              A1: assert x != 0;
              if (x != 0) { A2: assert x != 0; }
            }
        """)
        labels = oracle.labels_of(oracle.conservative_fail())
        assert labels == ["A1"]

    def test_verified_procedure_empty(self):
        oracle = setup("""
            procedure P(x: int) {
              assume x > 0;
              A: assert x > 0;
            }
        """)
        assert oracle.conservative_fail() == frozenset()


class TestDeadSets:
    def test_baseline_dead_removed(self):
        # the then-branch is dead already under true; it must not appear
        # in any dead set and must be recorded as baseline-dead
        oracle = setup("""
            procedure P(x: int) {
              assume x > 0;
              if (x < 0) { skip; } else { skip; }
            }
        """)
        assert oracle.baseline_dead
        assert oracle.dead_set(frozenset()) == frozenset()

    def test_spec_induced_dead(self):
        oracle = setup("""
            procedure P(x: int) {
              A: assert x != 0;
              if (x == 0) { skip; } else { skip; }
            }
        """)
        # under the clause {x == 0 is false} the then branch dies
        clause = frozenset({-1})  # preds[0] is canon '0 == x'
        assert oracle.dead_set(frozenset({clause}))
        assert not oracle.dead_set(frozenset())

    def test_cache_consistency(self):
        oracle = setup("procedure P(x: int) { A: assert x != 0; }")
        a = oracle.fail_set(frozenset())
        b = oracle.fail_set(frozenset())
        assert a is b  # cached object


class TestFormulaQueries:
    def test_fail_formula_vs_clause(self):
        oracle = setup("procedure P(x: int) { A: assert x != 0; }")
        spec = RelExpr("!=", VarExpr("x"), IntLit(0))
        assert oracle.fail_set_formula(spec) == frozenset()
        assert oracle.fail_set_formula(TRUE) != frozenset()

    def test_dead_formula(self):
        oracle = setup("""
            procedure P(x: int) {
              if (x == 0) { skip; } else { skip; }
            }
        """)
        spec = RelExpr("!=", VarExpr("x"), IntLit(0))
        assert oracle.dead_set_formula(spec)
        assert oracle.dead_set_formula(TRUE) == frozenset()


class TestBudget:
    def test_expired_budget_raises(self):
        oracle = setup("procedure P(x: int) { A: assert x != 0; }")
        oracle.budget = Budget(0.0)
        import time
        time.sleep(0.01)
        with pytest.raises(AnalysisTimeout):
            oracle.fail_set(frozenset({frozenset({1})}))

    def test_none_budget_never_raises(self):
        b = Budget(None)
        b.check()


class TestPredicateCover:
    def test_cover_excludes_failing_cubes(self):
        oracle = setup("""
            procedure P(x: int) {
              A: assert x != 0;
            }
        """)
        cover = predicate_cover(oracle)
        # Q = {0 == x}; the cube (0 == x) fails -> cover = {clause !(0==x)}
        assert cover == frozenset({frozenset({-1})})

    def test_cover_fail_is_empty(self):
        oracle = setup("""
            procedure P(x: int, y: int) {
              A1: assert x != 0;
              if (y == 0) { A2: assert y == 0; }
            }
        """)
        cover = predicate_cover(oracle)
        assert oracle.fail_set(cover) == frozenset()

    def test_verified_procedure_full_true_cover(self):
        oracle = setup("""
            procedure P(x: int) {
              assume x > 0;
              A: assert x > 0;
            }
        """)
        cover = predicate_cover(oracle)
        assert cover == frozenset()  # nothing fails: beta_Q = true

    def test_cover_clauses_are_maximal(self):
        oracle = setup("""
            procedure P(x: int, y: int) {
              A1: assert x != 0;
              A2: assert y != 0;
            }
        """)
        cover = predicate_cover(oracle)
        nq = len(oracle.preds)
        assert nq == 2
        for clause in cover:
            assert len(clause) == nq
            assert clause in set(all_maximal_clauses(nq))

    def test_solver_reusable_after_cover(self):
        # blocking clauses must be confined behind the guard
        oracle = setup("procedure P(x: int) { A: assert x != 0; }")
        before = oracle.fail_set_formula(TRUE)
        predicate_cover(oracle)
        oracle._fail_cache.clear()
        after = oracle.fail_set_formula(TRUE)
        assert before == after
