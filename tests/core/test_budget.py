"""The ``Budget`` lifecycle and the deprecated ``_SearchBudgetExceeded``
alias (both documented in ``docs/cli.md``)."""

import pytest

from repro.core.acspec import SearchBudgetExceeded, _SearchBudgetExceeded
from repro.core.deadfail import AnalysisTimeout, Budget


def test_deprecated_alias_is_the_public_class():
    # the alias is the same class object, not a subclass: code that
    # raises either name is caught by handlers for the other
    assert _SearchBudgetExceeded is SearchBudgetExceeded


def test_alias_raises_as_isinstance_of_public_class():
    with pytest.raises(SearchBudgetExceeded) as exc_info:
        raise _SearchBudgetExceeded("legacy raise site")
    assert isinstance(exc_info.value, SearchBudgetExceeded)
    assert isinstance(exc_info.value, _SearchBudgetExceeded)


def test_public_raise_caught_by_alias_handler():
    with pytest.raises(_SearchBudgetExceeded):
        raise SearchBudgetExceeded("new raise site")


def test_unbounded_budget_never_expires():
    b = Budget(None)
    b.check()  # no-op
    assert b.remaining() is None


def test_zero_budget_is_born_expired():
    b = Budget(0)
    with pytest.raises(AnalysisTimeout):
        b.check()
    assert b.remaining() == 0.0


def test_negative_budget_is_born_expired():
    b = Budget(-1)
    with pytest.raises(AnalysisTimeout):
        b.check()
    assert b.remaining() == 0.0


def test_positive_budget_checks_and_counts_down():
    b = Budget(60.0)
    b.check()  # far from the deadline: passes
    rem = b.remaining()
    assert rem is not None and 0.0 < rem <= 60.0


def test_expiry_raises_analysis_timeout():
    b = Budget(60.0)
    b.deadline -= 120.0  # wind the absolute deadline into the past
    with pytest.raises(AnalysisTimeout):
        b.check()
    assert b.remaining() == 0.0
