"""Algorithm 2 tests, including a brute-force property test of Theorem 1
on randomly generated procedures.

Brute-force Definition 4: every Q-formula weaker than the predicate cover
is (up to equivalence) a subset of the cover's maximal clauses, so
enumerating all subsets and their Dead/Fail sets yields ground truth for
the minimal failure count and the maximal dead-free weakenings.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.acspec import find_almost_correct_specs
from repro.core.cover import predicate_cover
from repro.core.deadfail import DeadFailOracle
from repro.core.predicates import mine_predicates
from repro.lang.ast import (AssertStmt, AssumeStmt, IfStmt, IntLit,
                            Procedure, Program, RelExpr, SkipStmt, Type,
                            VarExpr, seq)
from repro.lang.parser import parse_program
from repro.lang.transform import instrument, prepare_procedure
from repro.lang.typecheck import typecheck
from repro.vc.encode import EncodedProcedure


def setup(src: str, name: str = None, ignore_conditionals=False,
          max_preds=6):
    prog = typecheck(parse_program(src))
    pname = name or next(n for n, p in prog.procedures.items()
                         if p.body is not None)
    proc = prepare_procedure(prog, prog.proc(pname))
    enc = EncodedProcedure(prog, proc)
    preds = mine_predicates(prog, proc,
                            ignore_conditionals=ignore_conditionals,
                            max_preds=max_preds)
    oracle = DeadFailOracle(enc, preds)
    return oracle


class TestKnownCases:
    def test_no_sib_returns_cover(self):
        oracle = setup("procedure P(x: int) { if (*) { A: assert x != 0; } }")
        cover = predicate_cover(oracle)
        res = find_almost_correct_specs(oracle, cover)
        assert not res.has_abstract_sib
        assert res.min_fail == 0
        assert res.raw_specs == [cover]
        assert res.warnings == frozenset()

    def test_late_check_weakens_to_true(self):
        oracle = setup("""
            procedure P(x: int) {
              if (x != 0) { A1: assert x != 0; }
              A2: assert x != 0;
            }
        """)
        cover = predicate_cover(oracle)
        res = find_almost_correct_specs(oracle, cover)
        assert res.has_abstract_sib
        assert res.min_fail == 1
        assert res.specs == [frozenset()]  # 'true'
        assert len(res.warnings) == 1

    def test_empty_q_reports_all_conservative(self):
        prog = typecheck(parse_program("""
            procedure P(x: int) {
              A1: assert x > 0;
              A2: assert x < 10;
            }
        """))
        proc = prepare_procedure(prog, prog.proc("P"))
        enc = EncodedProcedure(prog, proc)
        oracle = DeadFailOracle(enc, [])  # Q = {}
        cover = predicate_cover(oracle)
        # VC satisfiable, so the single empty cube fails -> cover is the
        # empty clause (false)
        assert cover == frozenset({frozenset()})
        res = find_almost_correct_specs(oracle, cover)
        assert res.has_abstract_sib
        # the only weakening is true, which fails everything Cons fails
        assert res.warnings == oracle.conservative_fail()

    def test_concrete_sib_if_star_assert_e_else_not_e(self):
        oracle = setup("""
            procedure P(e: int) {
              if (*) { A1: assert e != 0; } else { A2: assert e == 0; }
            }
        """)
        cover = predicate_cover(oracle)
        res = find_almost_correct_specs(oracle, cover)
        assert res.has_abstract_sib
        assert res.min_fail == 1
        # two symmetric almost-correct specs, each failing one assertion
        assert len(res.raw_specs) == 2
        assert len(res.warnings) == 2

    def test_pruning_weakens_and_reveals(self):
        # Conc-style correlation spec has 2 literals; k=1 prunes it away
        oracle = setup("""
            procedure E() returns (r: int);
            procedure F() returns (r: int);
            procedure P() {
              var a: int;
              var b: int;
              call a := E();
              call b := F();
              if (b != 0) { A1: assert a != 0; }
            }
        """, name="P")
        cover = predicate_cover(oracle)
        res_nok = find_almost_correct_specs(oracle, cover, prune_k=None)
        res_k1 = find_almost_correct_specs(oracle, cover, prune_k=1)
        assert res_nok.warnings == frozenset()
        assert len(res_k1.warnings) == 1


# ----------------------------------------------------------------------
# Theorem 1 against brute force
# ----------------------------------------------------------------------


VARS = ["x", "y"]


@st.composite
def small_procs(draw):
    """Random tiny procedures with 1-3 assertions and branching."""
    n_stmts = draw(st.integers(1, 3))
    label = [0]

    def cond():
        v = VarExpr(draw(st.sampled_from(VARS)))
        op = draw(st.sampled_from(["==", "!=", "<", "<="]))
        return RelExpr(op, v, IntLit(draw(st.integers(-1, 1))))

    def leaf():
        kind = draw(st.integers(0, 2))
        if kind == 0:
            label[0] += 1
            return AssertStmt(cond(), label=f"A{label[0]}")
        if kind == 1:
            return AssumeStmt(cond())
        return SkipStmt()

    def stmt(d):
        if d == 0 or draw(st.booleans()):
            return leaf()
        nondet = draw(st.booleans())
        return IfStmt(None if nondet else cond(), stmt(d - 1), stmt(d - 1))

    body = seq(*[stmt(draw(st.integers(0, 2))) for _ in range(n_stmts)])
    # guarantee at least one assertion so the analysis has work to do
    label[0] += 1
    body = seq(body, AssertStmt(cond(), label=f"A{label[0]}"))
    return instrument(body)


def make_oracle(body, max_preds=4):
    var_types = {v: Type.INT for v in VARS}
    proc = Procedure(name="P", params=tuple(VARS), returns=(),
                     var_types=var_types, body=body)
    prog = Program(procedures={"P": proc})
    enc = EncodedProcedure(prog, proc)
    preds = mine_predicates(prog, proc, max_preds=max_preds)
    return DeadFailOracle(enc, preds)


@given(small_procs())
@settings(max_examples=60, deadline=None)
def test_theorem1_against_brute_force(body):
    oracle = make_oracle(body)
    if len(oracle.preds) > 4:
        return  # keep the 2^|cover| enumeration tame
    cover = predicate_cover(oracle)
    if len(cover) > 5:
        return
    res = find_almost_correct_specs(oracle, cover)

    # Brute force over all subsets of the cover.
    subsets = []
    cover_list = sorted(cover, key=lambda c: sorted(c, key=abs))
    for r in range(len(cover_list) + 1):
        for combo in itertools.combinations(cover_list, r):
            s = frozenset(combo)
            subsets.append((s, oracle.dead_set(s), oracle.fail_set(s)))
    dead_free = [(s, fail) for s, dead, fail in subsets if not dead]
    assert dead_free, "true (empty subset) must always be dead-free"
    true_min = min(len(fail) for _, fail in dead_free)

    # (a) the search finds the true minimum failure count
    assert res.min_fail == true_min

    # (b) every output is dead-free with exactly min_fail failures
    for spec in res.raw_specs:
        assert not oracle.dead_set(spec)
        assert len(oracle.fail_set(spec)) == true_min

    # (c) coverage: every maximal dead-free min-fail subset is implied by
    # (i.e. a superset of) some output
    winners = [s for s, fail in dead_free if len(fail) == true_min]
    maximal = [s for s in winners
               if not any(s < t for t in winners)]
    for m in maximal:
        assert any(spec <= m for spec in res.raw_specs), \
            f"maximal ACS {m} not covered by outputs {res.raw_specs}"

    # (d) the reported warnings are exactly the failures of the outputs
    expected = frozenset()
    for spec in res.specs:
        expected |= oracle.fail_set(spec)
    assert res.warnings == expected
