"""Algorithm 1 / analysis-driver tests: configurations, statuses, reports,
timeouts."""

import pytest

from repro.core import (A0, A1, A2, CONC, SibStatus, analyze_procedure,
                        analyze_program, check_procedure,
                        conservative_program, find_abstract_sibs)
from repro.frontend import compile_c
from repro.lang import parse_program, typecheck


FIG1 = typecheck(parse_program("""
var Freed: [int]int;
procedure Foo(c: int, buf: int, cmd: int) modifies Freed;
{
  if (*) {
    A1: assert Freed[c] == 0;  Freed[c] := 1;
    A2: assert Freed[buf] == 0; Freed[buf] := 1;
    return;
  }
  if (cmd == 0) {
    if (*) {
      A3: assert Freed[c] == 0;  Freed[c] := 1;
      A4: assert Freed[buf] == 0; Freed[buf] := 1;
    }
  }
  A5: assert Freed[c] == 0;  Freed[c] := 1;
  A6: assert Freed[buf] == 0; Freed[buf] := 1;
}
"""))


class TestFindAbstractSibs:
    def test_figure1_conc(self):
        res = find_abstract_sibs(FIG1, "Foo", config=CONC)
        assert res.status == SibStatus.SIB
        assert res.warnings == ["A5"]
        assert res.min_fail == 1
        assert len(res.conservative_warnings) == 6
        assert len(res.preds) == 4

    def test_correct_procedure_short_circuits(self):
        prog = typecheck(parse_program("""
            procedure P(x: int) {
              assume x > 0;
              A: assert x > 0;
            }
        """))
        res = find_abstract_sibs(prog, "P")
        assert res.status == SibStatus.CORRECT
        assert res.warnings == []
        assert res.conservative_warnings == []

    def test_maybug_without_sib(self):
        prog = typecheck(parse_program(
            "procedure P(x: int) { A: assert x != 0; }"))
        res = find_abstract_sibs(prog, "P")
        assert res.status == SibStatus.MAYBUG
        assert res.warnings == []
        assert res.specs == ["!(0 == x)"]

    def test_accepts_proc_object_or_name(self):
        r1 = find_abstract_sibs(FIG1, "Foo")
        r2 = find_abstract_sibs(FIG1, FIG1.proc("Foo"))
        assert r1.warnings == r2.warnings


class TestConfigs:
    def test_config_table_matches_figure4(self):
        assert not CONC.ignore_conditionals and not CONC.havoc_returns
        assert not A0.ignore_conditionals and A0.havoc_returns
        assert A1.ignore_conditionals and not A1.havoc_returns
        assert A2.ignore_conditionals and A2.havoc_returns

    def test_a0_equals_a2_on_fig2(self):
        src = """
            struct twoints { int a; int b; };
            int static_returns_t(void);
            void Bar(void) {
              struct twoints *data = NULL;
              data = (struct twoints *)calloc(100, sizeof(struct twoints));
              if (static_returns_t()) { data[0].a = 1; }
              else { if (data != NULL) { data[0].a = 1; } else { } }
            }
        """
        prog = compile_c(src)
        r0 = find_abstract_sibs(prog, "Bar", config=A0)
        r2 = find_abstract_sibs(prog, "Bar", config=A2)
        assert r0.warnings == r2.warnings
        assert r0.status == r2.status


class TestAnalyzeProcedure:
    def test_report_fields(self):
        rep = analyze_procedure(FIG1, "Foo", config=CONC)
        assert rep.proc_name == "Foo"
        assert rep.config_name == "Conc"
        assert not rep.timed_out
        assert rep.warnings == ["A5"]
        assert rep.n_preds == 4
        assert rep.n_cover_clauses > 0
        assert rep.seconds > 0

    def test_timeout_reported_not_raised(self):
        rep = analyze_procedure(FIG1, "Foo", config=CONC, timeout=0.0)
        assert rep.timed_out
        assert rep.warnings == []

    def test_prune_k_changes_warnings(self):
        src = """
            struct twoints { int a; int b; };
            int static_returns_t(void);
            void Bar(void) {
              struct twoints *data = NULL;
              data = (struct twoints *)calloc(10, sizeof(struct twoints));
              if (static_returns_t()) { data[0].a = 1; }
              else { if (data != NULL) { data[0].a = 1; } else { } }
            }
        """
        prog = compile_c(src)
        none = analyze_procedure(prog, "Bar", config=CONC, prune_k=None)
        k1 = analyze_procedure(prog, "Bar", config=CONC, prune_k=1)
        assert none.warnings == []
        assert k1.warnings == ["deref$1"]


class TestProgramLevel:
    SRC = """
        void safe(int *p) { if (p != NULL) { *p = 1; } }
        void envdep(int *p) { *p = 1; }
        void bug(int *p) { *p = 1; if (p != NULL) { *p = 2; } }
    """

    def test_analyze_program_aggregates(self):
        prog = compile_c(self.SRC)
        rep = analyze_program(prog, config=CONC)
        assert rep.config_name == "Conc"
        assert len(rep.reports) == 3
        assert rep.n_warnings == 1  # only the inconsistency in 'bug'
        assert rep.warned_procs == ["bug"]
        assert rep.n_timeouts == 0

    def test_conservative_program(self):
        prog = compile_c(self.SRC)
        warnings, timeouts = conservative_program(prog)
        assert timeouts == 0
        assert warnings["safe"] == []
        assert warnings["envdep"] == ["deref$1"]
        assert set(warnings["bug"]) == {"deref$1"}

    def test_check_procedure(self):
        prog = compile_c(self.SRC)
        res = check_procedure(prog, "safe")
        assert res.verified
        res2 = check_procedure(prog, "envdep")
        assert res2.warnings == ["deref$1"]

    def test_proc_names_filter(self):
        prog = compile_c(self.SRC)
        rep = analyze_program(prog, config=CONC, proc_names=["safe"])
        assert len(rep.reports) == 1
