"""The fuzzing harness itself: a short seeded campaign must come back
clean, the minimizer must shrink while preserving the failure predicate,
and corpus files must round-trip through write → parse → replay."""

from __future__ import annotations

from repro.fuzz import gen
from repro.fuzz.campaign import (
    ROTATION, CampaignCase, _write_case, iteration_seed, parse_case_header,
    replay_case_text, run_campaign,
)
from repro.fuzz.gen import generate_program
from repro.fuzz.minimize import count_stmts, has_assert, minimize_program
from repro.lang.pretty import pp_program


def test_short_campaign_is_clean(tmp_path):
    result = run_campaign(seed=0, iterations=8, corpus_dir=tmp_path,
                          jobs_every=0)
    assert result.ok, (result.disagreements, result.certificate_failures)
    assert result.executed["roundtrip"] == 8
    # the heavyweight rotation covered every oracle at least once
    for oracle, _ in ROTATION:
        assert result.executed.get(oracle, 0) >= 1, oracle
    assert not list(tmp_path.iterdir())  # clean campaign writes nothing


def test_focused_campaign_runs_only_the_named_oracle(tmp_path):
    result = run_campaign(seed=0, iterations=3, corpus_dir=tmp_path,
                          jobs_every=0, only="theory_justifications")
    assert result.ok, (result.disagreements, result.certificate_failures)
    assert result.executed == {"theory_justifications": 3}
    assert not list(tmp_path.iterdir())
    try:
        run_campaign(seed=0, iterations=1, only="no-such-oracle")
    except ValueError as exc:
        assert "no-such-oracle" in str(exc)
    else:
        raise AssertionError("unknown oracle name was accepted")


def test_iteration_seed_is_stable_and_spread():
    seeds = [iteration_seed(0, i) for i in range(100)]
    assert seeds == [iteration_seed(0, i) for i in range(100)]
    assert len(set(seeds)) == 100
    assert set(seeds) != {iteration_seed(1, i) for i in range(100)}


def test_minimizer_shrinks_but_preserves_predicate():
    program = generate_program(3, gen.GENERAL)

    def still_fails(p):
        return has_assert(p)

    small = minimize_program(program, still_fails)
    assert has_assert(small)
    assert count_stmts(small) <= count_stmts(program)
    # a single assert is all the predicate needs; greedy one-step removal
    # should get (close to) there
    assert count_stmts(small) <= 3


def test_minimizer_survives_crashing_predicate():
    program = generate_program(5, gen.GENERAL)
    calls = []

    def picky(p):
        calls.append(p)
        if not has_assert(p):
            raise ValueError("predicate crashed")  # treated as "fixed"
        return True

    small = minimize_program(program, picky)
    assert has_assert(small)
    assert calls  # the predicate actually ran


def test_corpus_write_parse_replay_roundtrip(tmp_path):
    program = generate_program(11, gen.GENERAL)
    case = CampaignCase(oracle="roundtrip", iteration=4,
                        rng_seed=1234, detail="synthetic case\nwith newline",
                        source=pp_program(program))
    path = _write_case(case, campaign_seed=7, corpus_dir=tmp_path)
    text = (tmp_path / "roundtrip-s7-i0004.bpl").read_text()
    assert path.endswith("roundtrip-s7-i0004.bpl")
    assert parse_case_header(text) == ("roundtrip", 1234)
    # the committed reproducer replays through the named oracle
    assert replay_case_text(text) is None


def test_scenario_preset_emits_every_family():
    from repro.lang.parser import parse_program
    from repro.lang.typecheck import typecheck
    seen: set[str] = set()
    for seed in range(40):
        program = generate_program(seed, gen.SCENARIOS)
        text = pp_program(program)
        # scenario asserts stay inside the parser normal form
        assert parse_program(text) == program, seed
        typecheck(program)
        for fam in ("uaf$", "bound$", "div$", "uninit$"):
            if fam + "1:" in text:
                seen.add(fam)
    assert seen == {"uaf$", "bound$", "div$", "uninit$"}


def test_scenario_preset_is_in_the_rotation():
    assert ("incremental-vs-naive", gen.SCENARIOS) in ROTATION
