"""Golden lowering fixtures: the same mini-C snippet lowered once per
scenario class must keep producing byte-identical IL
(``tests/fixtures/lowering/<class>.bpl``), and the default lowering
must not mention any of the opt-in machinery."""

from pathlib import Path

import pytest

from repro.frontend.lower import compile_c
from repro.lang.pretty import pp_program
from repro.scenarios.classes import (ALL_CLASSES, DEFAULT_CLASSES,
                                     SCENARIO_CLASSES)

FIXDIR = Path(__file__).resolve().parents[1] / "fixtures" / "lowering"
SNIPPET = (FIXDIR / "snippet.c").read_text()

#: class -> a label marker its lowering (alone) must introduce (the
#: trailing colon keeps ``div$1:`` from matching the always-declared
#: uninterpreted ``function div$``)
MARKERS = {
    "null-deref": "deref$1:",
    "use-after-free": "uaf$1:",
    "buffer-overflow": "bound$1:",
    "divide-by-zero": "div$1:",
    "use-before-init": "uninit$1:",
}


def lower(bug_classes) -> str:
    text = pp_program(compile_c(SNIPPET, bug_classes=bug_classes))
    return text if text.endswith("\n") else text + "\n"


class TestGoldenFixtures:
    @pytest.mark.parametrize("cls", SCENARIO_CLASSES)
    def test_single_class_lowering_matches_golden(self, cls):
        golden = (FIXDIR / f"{cls}.bpl").read_text()
        assert lower(frozenset({cls})) == golden

    @pytest.mark.parametrize("cls", SCENARIO_CLASSES)
    def test_single_class_introduces_only_its_own_labels(self, cls):
        text = lower(frozenset({cls}))
        assert MARKERS[cls] in text
        for other, marker in MARKERS.items():
            if other != cls:
                assert marker not in text

    def test_default_equals_explicit_default_set(self):
        assert lower(None) == lower(DEFAULT_CLASSES)

    def test_default_has_no_scenario_machinery(self):
        text = lower(None)
        for cls, marker in MARKERS.items():
            if cls != "null-deref":
                assert marker not in text
        assert "AllocSize" not in text
        assert "var Init" not in text

    def test_all_classes_compose(self):
        text = lower(ALL_CLASSES)
        for marker in MARKERS.values():
            assert marker in text
        assert "AllocSize" in text
        assert "Init" in text


class TestMapGlobals:
    def test_alloc_size_only_with_buffer_overflow(self):
        assert "var AllocSize: [int]int;" in lower(
            frozenset({"buffer-overflow"}))
        assert "AllocSize" not in lower(frozenset({"divide-by-zero"}))

    def test_init_only_with_use_before_init(self):
        assert "var Init: [int]int;" in lower(
            frozenset({"use-before-init"}))
        assert "Init" not in lower(frozenset({"buffer-overflow"}))
