"""End-to-end bug-class tagging: all five families flow from mini-C
through analysis into ``ProcedureReport.bug_classes``,
``ProgramReport.bug_class_totals``, ``TriagedWarning.bug_class`` and
the CLI summary line."""

from pathlib import Path

from repro.cli import run
from repro.core import analyze_program, conservative_program
from repro.core.analysis import analyze_procedure
from repro.core.report import TriagedWarning
from repro.frontend.lower import compile_c
from repro.scenarios.classes import ALL_CLASSES, SCENARIO_CLASSES

#: one real bug per scenario family, in one translation unit
FIVE_BUGS = """
void bug_deref(int *p) {
  *p = 1;
  if (p != NULL) {
    *p = 2;
  }
}

void bug_uaf(int *p) {
  free(p);
  *p = 1;
}

void bug_bound(int k) {
  int *b;
  b = (int *)malloc(2);
  b[5] = k;
}

void bug_div(int n, int d) {
  int q;
  q = n / d;
  if (d != 0) {
    q = n / d;
  }
}

int bug_uninit(int n) {
  int x;
  if (n > 0) {
    x = 1;
  }
  return x;
}
"""

EXPECTED = {
    "bug_deref": "null-deref",
    "bug_uaf": "use-after-free",
    "bug_bound": "buffer-overflow",
    "bug_div": "divide-by-zero",
    "bug_uninit": "use-before-init",
}


def _program():
    return compile_c(FIVE_BUGS, bug_classes=ALL_CLASSES)


class TestReportTagging:
    def test_all_five_classes_reach_procedure_reports(self):
        prog = _program()
        rep = analyze_program(prog, proc_names=sorted(EXPECTED))
        by_proc = {r.proc_name: r for r in rep.reports}
        for proc, cls in EXPECTED.items():
            assert cls in by_proc[proc].bug_classes, (proc, cls)
        totals = rep.bug_class_totals()
        for cls in SCENARIO_CLASSES:
            assert totals.get(cls, 0) >= 1, cls

    def test_conservative_warns_on_every_family(self):
        prog = _program()
        warnings, timeouts = conservative_program(
            prog, proc_names=sorted(EXPECTED))
        assert timeouts == 0
        for proc, cls in EXPECTED.items():
            labels = warnings.get(proc, [])
            assert labels, proc
            from repro.scenarios.classes import bug_class_counts
            assert cls in bug_class_counts(labels)

    def test_bug_classes_counts_match_warning_labels(self):
        prog = _program()
        rep = analyze_procedure(prog, "bug_div")
        assert sum(rep.bug_classes.values()) == len(rep.warnings)

    def test_triaged_warning_derives_its_class(self):
        w = TriagedWarning(proc_name="p", label="uaf$2", confidence="HIGH")
        assert w.bug_class == "use-after-free"
        w2 = TriagedWarning(proc_name="p", label="R1", confidence="HIGH")
        assert w2.bug_class == "user-assert"


class TestCliSummary:
    def test_batch_prints_bug_class_summary(self, tmp_path):
        import io
        src = tmp_path / "five.c"
        src.write_text(FIVE_BUGS)
        buf = io.StringIO()
        rc = run(["--c", "--bug-classes", "all", str(src)], out=buf)
        out = buf.getvalue()
        assert rc == 1
        assert "warnings by bug class:" in out
        for cls in EXPECTED.values():
            assert f"{cls}=" in out

    def test_batch_default_classes_only_deref(self, tmp_path):
        import io
        src = tmp_path / "five.c"
        src.write_text(FIVE_BUGS)
        buf = io.StringIO()
        rc = run(["--c", str(src)], out=buf)
        out = buf.getvalue()
        assert rc == 1
        assert "use-after-free" not in out
        assert "buffer-overflow" not in out

    def test_bad_bug_classes_spec_exits_2(self, tmp_path, capsys):
        src = tmp_path / "five.c"
        src.write_text(FIVE_BUGS)
        assert run(["--c", "--bug-classes", "bogus", str(src)]) == 2
