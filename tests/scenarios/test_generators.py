"""Property tests for the scenario generators: determinism, ground
truth by construction (buggy labels are Fail-reachable under Cons, safe
labels are provable), and per-class isolation."""

import random

from hypothesis import given, settings, strategies as st

from repro.bench.runner import compile_suite, run_conservative
from repro.bench.suites import build_suite
from repro.scenarios.classes import LABEL_PREFIXES, NULL_DEREF
from repro.scenarios.generators import (SCENARIO_PATTERNS,
                                        SCENARIO_SUITE_RECIPES,
                                        make_scenario_suite,
                                        scenario_suites, suite_bug_class)

#: patterns whose suites the Cons-equals-ground-truth property covers
#: (the null-deref shapes deliberately include Cons false positives —
#: that is the family's whole point)
NEW_FAMILY_SUITES = [n for n in SCENARIO_SUITE_RECIPES
                     if suite_bug_class(n) != NULL_DEREF]

seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds)
    def test_same_seed_same_suite(self, seed):
        for name in SCENARIO_SUITE_RECIPES:
            a = make_scenario_suite(name, seed=seed)
            b = make_scenario_suite(name, seed=seed)
            assert a.c_source == b.c_source
            assert a.labels == b.labels

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, data=st.data())
    def test_emitters_are_pure_functions_of_the_rng(self, seed, data):
        pattern = data.draw(st.sampled_from(sorted(SCENARIO_PATTERNS)))
        emit = SCENARIO_PATTERNS[pattern]
        a = emit(random.Random(seed), "f1")
        b = emit(random.Random(seed), "f1")
        assert a.code == b.code
        assert a.labels == b.labels

    def test_default_seed_is_stable_per_suite(self):
        for name in SCENARIO_SUITE_RECIPES:
            assert make_scenario_suite(name).c_source == \
                make_scenario_suite(name).c_source


class TestGroundTruth:
    @settings(max_examples=5, deadline=None)
    @given(seed=seeds)
    def test_cons_matches_construction_ground_truth(self, seed):
        """On the four new families the conservative verifier agrees
        exactly with the labels: buggy => Fail-reachable (warned), safe
        => provable (silent).  Any seed must preserve this — the shapes
        are designed so the verdict does not depend on the rng-chosen
        constants."""
        for name in NEW_FAMILY_SUITES:
            suite = make_scenario_suite(name, seed=seed)
            run = run_conservative(suite, timeout=10.0)
            assert not run.timed_out
            got = {(f, l) for f, ws in run.warnings.items() for l in ws}
            want = {(f, l) for (f, l), buggy in suite.labels.items()
                    if buggy}
            assert got == want, f"{name}: cons drifted from ground truth"

    def test_every_suite_mixes_buggy_and_safe(self):
        for suite in scenario_suites():
            assert 0 < suite.n_buggy < suite.n_labeled_asserts


class TestIsolation:
    def test_each_suite_emits_only_its_own_family(self):
        prefix_of = {cls: p for p, cls in LABEL_PREFIXES.items()
                     if p != "unlock"}
        for name in SCENARIO_SUITE_RECIPES:
            suite = make_scenario_suite(name)
            want_prefix = prefix_of[suite_bug_class(name)]
            for (_, label) in suite.labels:
                assert label.startswith(want_prefix + "$")

    def test_compiled_suite_asserts_match_labels(self):
        """The lowering inserts exactly the labeled assertions: nothing
        the ground truth does not cover (per-procedure, per-label)."""
        from repro.lang.ast import asserts_in
        for suite in scenario_suites():
            prog = compile_suite(suite)
            for f in suite.functions:
                body = prog.proc(f.name).body
                labels = {a.label for a in asserts_in(body)}
                assert labels == set(f.labels), f.name


class TestScaling:
    def test_scale_changes_size_not_labels_shape(self):
        big = make_scenario_suite("scn_div", scale=2.0)
        small = make_scenario_suite("scn_div", scale=0.5)
        assert big.n_functions > small.n_functions
        assert small.n_functions > 0

    def test_build_suite_rejects_unknown_pattern(self):
        import pytest
        with pytest.raises(KeyError):
            build_suite("x", "d", {"no_such_pattern": 1}, seed=1,
                        patterns=SCENARIO_PATTERNS)
