"""The bug-class registry (`repro.scenarios.classes`): label-prefix
derivation, canonical counting, and spec parsing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scenarios.classes import (ALL_CLASSES, BUG_CLASSES,
                                     DEFAULT_CLASSES, LABEL_PREFIXES,
                                     SCENARIO_CLASSES, USER_ASSERT,
                                     bug_class_counts, bug_class_of,
                                     parse_bug_classes)


class TestBugClassOf:
    def test_every_prefix_maps_to_its_class(self):
        for prefix, cls in LABEL_PREFIXES.items():
            assert bug_class_of(f"{prefix}$1") == cls
            assert bug_class_of(f"{prefix}$17") == cls

    def test_call_precondition_labels(self):
        # the lowering emits pre$<n>$<callee> labels for call preconditions
        assert bug_class_of("pre$1$Release") == "call-precondition"

    def test_unknown_prefix_falls_back_to_user_assert(self):
        assert bug_class_of("A5") == USER_ASSERT
        assert bug_class_of("whatever$3") == USER_ASSERT
        assert bug_class_of("") == USER_ASSERT

    @settings(max_examples=100, deadline=None)
    @given(st.text(min_size=0, max_size=12))
    def test_total_on_arbitrary_labels(self, label):
        assert bug_class_of(label) in BUG_CLASSES


class TestCounts:
    def test_counts_are_sorted_and_complete(self):
        counts = bug_class_counts(["deref$1", "deref$2", "uaf$1", "U1"])
        assert counts == {"null-deref": 2, "use-after-free": 1,
                          "user-assert": 1}
        assert list(counts) == sorted(counts)

    def test_empty(self):
        assert bug_class_counts([]) == {}


class TestParseSpec:
    def test_aliases(self):
        assert parse_bug_classes("default") == DEFAULT_CLASSES
        assert parse_bug_classes("all") == ALL_CLASSES

    def test_explicit_list(self):
        got = parse_bug_classes("use-after-free,divide-by-zero")
        assert got == frozenset({"use-after-free", "divide-by-zero"})

    def test_whitespace_tolerated(self):
        got = parse_bug_classes(" null-deref , divide-by-zero ")
        assert got == frozenset({"null-deref", "divide-by-zero"})

    def test_unknown_class_raises(self):
        with pytest.raises(ValueError, match="unknown bug class"):
            parse_bug_classes("null-deref,nonsense")

    def test_scenario_classes_are_all_gateable(self):
        assert set(SCENARIO_CLASSES) <= set(ALL_CLASSES)
