"""Benchmark harness tests: suite generation determinism, ground-truth
label sanity (every label corresponds to a real assertion in the compiled
program), classification arithmetic, and table rendering."""

import pytest

from repro.bench import (LARGE_SUITE_RECIPES, PATTERNS, SMALL_SUITE_RECIPES,
                         Classification, classify, compile_suite,
                         fig5_table, fig6_table, fig7_table, fig8_table,
                         fig9_table, make_suite, run_conservative,
                         run_suite, suite_statistics)
from repro.bench.runner import SuiteRun
from repro.bench.suites import build_suite
from repro.core import CONC
from repro.lang.ast import asserts_in
from repro.lang.transform import prepare_procedure


class TestSuiteGeneration:
    def test_deterministic(self):
        a = make_suite("CWE476", scale=0.3)
        b = make_suite("CWE476", scale=0.3)
        assert a.c_source == b.c_source
        assert a.labels == b.labels

    def test_scale_changes_size(self):
        small = make_suite("CWE476", scale=0.3)
        big = make_suite("CWE476", scale=1.0)
        assert big.n_functions > small.n_functions

    def test_all_recipes_compile(self):
        for name in list(SMALL_SUITE_RECIPES) + list(LARGE_SUITE_RECIPES):
            suite = make_suite(name, scale=0.15)
            prog = compile_suite(suite)
            for fn in suite.functions:
                assert fn.name in prog.procedures

    @pytest.mark.parametrize("pattern", sorted(PATTERNS))
    def test_every_pattern_labels_match_compiled_asserts(self, pattern):
        """Each ground-truth label must name a real assertion of the
        prepared procedure (guards against deref-numbering drift)."""
        suite = build_suite("t", "test", {pattern: 2}, seed=7)
        prog = compile_suite(suite)
        for fn in suite.functions:
            prepared = prepare_procedure(prog, prog.proc(fn.name))
            labels = {a.label for a in asserts_in(prepared.body)}
            for lab in fn.labels:
                assert lab in labels, (pattern, fn.name, lab, labels)

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError):
            make_suite("nope")

    def test_statistics_fields(self):
        stats = suite_statistics(make_suite("event", scale=1.0))
        assert stats["bench"] == "event"
        assert stats["procs"] >= 3
        assert stats["asserts"] > 0
        assert stats["loc_c"] > 0
        assert stats["loc_il"] > stats["loc_c"] // 2


class TestClassification:
    def _fake(self, suite, reported):
        run = SuiteRun(suite_name=suite.name, config_name="X", prune_k=None)
        run.warnings = reported
        return run

    def test_counts(self):
        suite = build_suite("t", "test", {"check_then_use": 1}, seed=1)
        fn = suite.functions[0].name
        # ground truth: deref$1 buggy, deref$2 safe
        run = self._fake(suite, {fn: ["deref$1"]})
        c = classify(suite, run)
        assert (c.correct, c.false_positives, c.false_negatives) == (2, 0, 0)
        run = self._fake(suite, {fn: ["deref$2"]})
        c = classify(suite, run)
        assert (c.correct, c.false_positives, c.false_negatives) == (0, 1, 1)
        run = self._fake(suite, {})
        c = classify(suite, run)
        assert (c.correct, c.false_positives, c.false_negatives) == (1, 0, 1)

    def test_timed_out_excluded(self):
        suite = build_suite("t", "test", {"check_then_use": 1}, seed=1)
        fn = suite.functions[0].name
        run = self._fake(suite, {})
        run.timed_out = [fn]
        c = classify(suite, run)
        assert c.total == 0


class TestEndToEndSmall:
    def test_cwe_suite_shapes(self):
        suite = make_suite("CWE476", scale=0.3)
        prog = compile_suite(suite)
        conc = run_suite(suite, CONC, program=prog)
        cons = run_conservative(suite, program=prog)
        c_conc = classify(suite, conc)
        c_cons = classify(suite, cons)
        # the paper's headline shapes
        assert conc.n_warnings < cons.n_warnings
        assert c_conc.false_positives == 0
        assert c_cons.false_negatives == 0
        assert c_cons.false_positives > 0

    def test_run_records_averages(self):
        suite = make_suite("event", scale=1.0)
        run = run_suite(suite, CONC)
        assert run.n_procs == suite.n_functions
        assert run.avg_preds >= 0
        assert run.avg_seconds > 0


class TestTables:
    def test_fig5(self):
        stats = [{"bench": "a", "loc_c": 10, "loc_il": 20, "procs": 2,
                  "asserts": 3},
                 {"bench": "b", "loc_c": 5, "loc_il": 9, "procs": 1,
                  "asserts": 1}]
        out = fig5_table(stats)
        assert "Total" in out and "15" in out

    def test_fig6(self):
        data = {"a": {("Conc", None): 3, ("Conc", 3): 4, ("Conc", 2): 4,
                      ("Conc", 1): 5, ("A1", None): 2, ("A2", None): 1,
                      "Cons": 10, "TO": 0}}
        out = fig6_table(data)
        assert "Cons" in out and "Total" in out

    def test_fig7(self):
        data = {"a": {c: Classification(5, 1, 2)
                      for c in ("Conc", "A1", "A2", "Cons")}}
        out = fig7_table(data)
        assert "FP" in out

    def test_fig8(self):
        data = {"Drv1": {"Procs": 10, "Asrt": 50, "Conc": 1, "A1": 2,
                         "A2": 5, "Cons": 30, "TO": 1}}
        out = fig8_table(data)
        assert "Drv1" in out

    def test_fig9(self):
        data = {"Drv1": {c: (3.5, 1.1, 0.4) for c in ("Conc", "A1", "A2")}}
        out = fig9_table(data)
        assert "3.5" in out
